// E4 / §II-A — Photonic PUF statistical quality: intra/inter fractional
// Hamming distance, uniformity, aliasing entropy, min-entropy, and the
// NIST SP 800-22 subset, side by side with the electronic baselines.
//
// Paper claim: "fractional Hamming distance close to 50% intra and
// inter-device and good score for various NIST tests" (ref. [12]).
// "Intra" in that phrasing is the distance between responses to
// *different challenges on the same device* (challenge sensitivity);
// the reliability intra-distance (same challenge re-read) is reported
// separately and must be small.
#include <thread>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "metrics/identification.hpp"
#include "metrics/nist.hpp"
#include "metrics/population.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/population.hpp"
#include "puf/ro_puf.hpp"
#include "puf/spectral_puf.hpp"
#include "puf/sram_puf.hpp"
#include "puf/trng.hpp"

namespace {

using namespace neuropuls;

constexpr std::size_t kDevices = 16;

struct QualityRow {
  std::string name;
  double uniformity;
  double uniqueness;
  double reliability_intra;  // same-challenge re-read distance
  double challenge_intra;    // different-challenge distance (same device)
  double aliasing_entropy;
  double min_entropy;
};

QualityRow measure_photonic() {
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  crypto::ChaChaDrbg rng(crypto::bytes_of("e4"));
  const puf::Challenge challenge = rng.generate(cfg.challenge_bits / 8);

  // Batch engine: fabrication + calibration, the reference responses, and
  // the reliability re-read matrix all fan out across the thread pool;
  // index-keyed noise seeding keeps every number identical to the former
  // per-device serial loop.
  puf::PufPopulation population(cfg, 4242, kDevices);
  const std::vector<crypto::Bytes> responses =
      population.evaluate_noiseless_all(challenge);
  const std::vector<std::vector<crypto::Bytes>> rereads =
      population.evaluate_repeats(challenge, 5);

  double challenge_intra = 0.0;
  int ci_count = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    std::vector<puf::Challenge> others;
    for (int t = 0; t < 4; ++t) {
      others.push_back(rng.generate(cfg.challenge_bits / 8));
    }
    for (const auto& r : population.device(d).evaluate_noiseless_batch(others)) {
      challenge_intra +=
          crypto::fractional_hamming_distance(responses[d], r);
      ++ci_count;
    }
  }
  const auto report = metrics::population_report(responses, rereads);
  return {"photonic-puf", report.uniformity_mean, report.uniqueness,
          1.0 - report.reliability_mean, challenge_intra / ci_count,
          report.aliasing_entropy_mean, report.min_entropy};
}

QualityRow measure_spectral() {
  puf::SpectralPufConfig cfg;
  cfg.rings = 16;
  cfg.wavelength_channels = 512;
  std::vector<crypto::Bytes> responses;
  std::vector<std::vector<crypto::Bytes>> rereads;
  for (std::size_t d = 0; d < kDevices; ++d) {
    puf::SpectralMicroringPuf device(cfg, 4242, d);
    responses.push_back(device.evaluate_noiseless({}));
    std::vector<crypto::Bytes> reads;
    for (int r = 0; r < 5; ++r) reads.push_back(device.evaluate({}));
    rereads.push_back(std::move(reads));
  }
  const auto report = metrics::population_report(responses, rereads);
  // Spectral weak PUF: no challenge axis.
  return {"spectral-puf", report.uniformity_mean, report.uniqueness,
          1.0 - report.reliability_mean, 0.0, report.aliasing_entropy_mean,
          report.min_entropy};
}

QualityRow measure_sram() {
  std::vector<crypto::Bytes> responses;
  std::vector<std::vector<crypto::Bytes>> rereads;
  for (std::size_t d = 0; d < kDevices; ++d) {
    puf::SramPuf device(puf::SramPufConfig{}, 100 + d);
    responses.push_back(device.evaluate_noiseless({}));
    std::vector<crypto::Bytes> reads;
    for (int r = 0; r < 5; ++r) reads.push_back(device.evaluate({}));
    rereads.push_back(std::move(reads));
  }
  const auto report = metrics::population_report(responses, rereads);
  // SRAM is a weak PUF: no challenge axis.
  return {"sram-puf", report.uniformity_mean, report.uniqueness,
          1.0 - report.reliability_mean, 0.0, report.aliasing_entropy_mean,
          report.min_entropy};
}

void print_quality_table() {
  bench::banner("E4 / §II-A", "PUF population quality metrics");
  std::printf("  %-14s %-11s %-11s %-12s %-12s %-10s %-10s\n", "puf",
              "uniformity", "uniqueness", "intra(rel.)", "intra(chal)",
              "alias-H", "min-H");
  for (const auto& row :
       {measure_photonic(), measure_spectral(), measure_sram()}) {
    std::printf("  %-14s %-11.3f %-11.3f %-12.3f %-12.3f %-10.3f %-10.3f\n",
                row.name.c_str(), row.uniformity, row.uniqueness,
                row.reliability_intra, row.challenge_intra,
                row.aliasing_entropy, row.min_entropy);
  }
  bench::note("targets: uniformity/uniqueness/intra(chal) ~ 0.5, "
              "intra(rel.) ~ a few %, entropies ~ 1 bit/bit.");
}

void print_nist_table() {
  bench::banner("E4 / §II-A",
                "NIST SP 800-22 subset: response stream vs photonic TRNG");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  puf::PhotonicPuf device(cfg, 4242, 3);

  // Stream 1: concatenated noiseless responses to random challenges (the
  // raw PUF-output evaluation). Short-range response correlations and
  // residual calibration bias are expected to fail several tests — raw
  // PUF bits are identification material, not randomness.
  crypto::ChaChaDrbg rng(crypto::bytes_of("e4-nist"));
  std::vector<puf::Challenge> stream_challenges;
  while (stream_challenges.size() * device.response_bytes() < 2048) {
    stream_challenges.push_back(rng.generate(4));
  }
  crypto::Bytes response_stream;
  for (const auto& r : device.evaluate_noiseless_batch(stream_challenges)) {
    response_stream.insert(response_stream.end(), r.begin(), r.end());
  }

  // Streams 2/3: the photonic TRNG service (noise-differential readout).
  puf::PhotonicTrng trng(device, puf::Challenge(4, 0x5A));
  const crypto::Bytes debiased = trng.debiased_bits(2048 * 8);
  const crypto::Bytes conditioned = trng.conditioned_bytes(2048);

  const auto raw_bits = metrics::bits_from_bytes(response_stream);
  const auto deb_bits = metrics::bits_from_bytes(debiased);
  const auto con_bits = metrics::bits_from_bytes(conditioned);
  const auto raw_results = metrics::nist_suite(raw_bits);
  const auto deb_results = metrics::nist_suite(deb_bits);
  const auto con_results = metrics::nist_suite(con_bits);

  std::printf("  %-22s %-16s %-16s %-16s\n", "test", "raw responses",
              "TRNG debiased", "TRNG conditioned");
  for (std::size_t i = 0; i < raw_results.size(); ++i) {
    auto cell = [](const metrics::NistResult& r) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%.3f %s", r.p_value,
                    r.passed ? "ok" : "FAIL");
      return std::string(buf);
    };
    std::printf("  %-22s %-16s %-16s %-16s\n", raw_results[i].test.c_str(),
                cell(raw_results[i]).c_str(), cell(deb_results[i]).c_str(),
                cell(con_results[i]).c_str());
  }
  std::printf("  pass fraction: raw %.2f, debiased %.2f, conditioned %.2f\n",
              metrics::nist_pass_fraction(raw_bits),
              metrics::nist_pass_fraction(deb_bits),
              metrics::nist_pass_fraction(con_bits));
  bench::note("raw response bits carry device identity, not randomness — "
              "the TRNG path (photodiode noise, von Neumann + SHA "
              "conditioning) is what feeds the NIST-grade key generator.");
}

void print_identification_table() {
  bench::banner("E4 / §V",
                "Identification error rates (FAR / FRR / EER) — photonic PUF");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  crypto::ChaChaDrbg rng(crypto::bytes_of("e4-roc"));
  const puf::Challenge challenge = rng.generate(4);
  puf::PufPopulation population(cfg, 4242, kDevices);
  const std::vector<crypto::Bytes> refs =
      population.evaluate_noiseless_all(challenge);
  const std::vector<std::vector<crypto::Bytes>> rereads =
      population.evaluate_repeats(challenge, 8);
  const auto samples = metrics::gather_distance_samples(refs, rereads);
  const auto curve = metrics::roc_curve(samples.intra, samples.inter, 10);
  std::printf("  %-14s %-10s %-10s\n", "threshold", "FAR", "FRR");
  for (const auto& point : curve) {
    std::printf("  %-14.3f %-10.3f %-10.3f\n", point.threshold, point.far,
                point.frr);
  }
  const auto eer = metrics::equal_error_rate(samples.intra, samples.inter);
  const auto window =
      metrics::zero_error_window(samples.intra, samples.inter);
  std::printf("  EER = %.4f at threshold %.3f\n", eer.eer, eer.threshold);
  if (window.exists) {
    std::printf("  zero-error threshold window: [%.3f, %.3f]\n", window.low,
                window.high);
  }
  bench::note("§V: 'error rates, including false positive and false "
              "negative rates, should be analyzed' — the intra/inter "
              "distributions separate cleanly, leaving a wide zero-error "
              "operating window.");
}

void print_aging_table() {
  bench::banner("E4 / §V", "Aging: drift from time-zero enrollment");
  std::printf("  %-16s %-18s %-18s\n", "stress hours", "SRAM drift (HD)",
              "RO bit flips /60");
  puf::SramPuf sram(puf::SramPufConfig{}, 90);
  puf::RoPuf ro(puf::RoPufConfig{}, 90);
  const auto sram_ref = sram.evaluate_noiseless({});
  std::vector<puf::Response> ro_ref;
  for (std::size_t i = 0; i < 60; ++i) {
    ro_ref.push_back(ro.evaluate_noiseless(puf::encode_ro_challenge(i, i + 1)));
  }
  double previous_hours = 0.0;
  for (double hours : {100.0, 1000.0, 10000.0, 50000.0}) {
    sram.age(hours - previous_hours);
    ro.age(hours - previous_hours);
    previous_hours = hours;
    const double sram_drift = crypto::fractional_hamming_distance(
        sram_ref, sram.evaluate_noiseless({}));
    int flips = 0;
    for (std::size_t i = 0; i < 60; ++i) {
      flips += (ro.evaluate_noiseless(puf::encode_ro_challenge(i, i + 1)) !=
                ro_ref[i]);
    }
    std::printf("  %-16.0f %-18.3f %-18d\n", hours, sram_drift, flips);
  }
  bench::note("§V: reliability must be evaluated under 'the effects of "
              "aging' — drift grows ~sqrt(time); helper-data refresh "
              "(re-enrollment) restores reliability, margin filtering "
              "delays the onset.");
}

void print_tables() {
  print_quality_table();
  print_nist_table();
  print_identification_table();
  print_aging_table();
}

void BM_PhotonicEvaluate(benchmark::State& state) {
  puf::PhotonicPufConfig cfg;  // full-size: 64-bit challenge, 8 ports
  puf::PhotonicPuf device(cfg, 1, 0);
  const puf::Challenge c(8, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate(c));
  }
}
BENCHMARK(BM_PhotonicEvaluate)->Unit(benchmark::kMicrosecond);

void BM_PhotonicEvaluateNoiseless(benchmark::State& state) {
  puf::PhotonicPufConfig cfg;
  puf::PhotonicPuf device(cfg, 1, 0);
  const puf::Challenge c(8, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_noiseless(c));
  }
}
BENCHMARK(BM_PhotonicEvaluateNoiseless)->Unit(benchmark::kMicrosecond);

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Thread-scaling cases: items/sec at 1, 2, 4, and hardware_concurrency
// threads over a dedicated pool (Arg = pool width).

void BM_PhotonicEvaluateBatch(benchmark::State& state) {
  puf::PhotonicPufConfig cfg;  // full-size: 64-bit challenge, 8 ports
  puf::PhotonicPuf device(cfg, 1, 0);
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  crypto::ChaChaDrbg rng(crypto::bytes_of("batch-bench"));
  std::vector<puf::Challenge> challenges;
  for (int i = 0; i < 64; ++i) challenges.push_back(rng.generate(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_batch(challenges, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(challenges.size()));
}
BENCHMARK(BM_PhotonicEvaluateBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(hardware_threads())
    ->Unit(benchmark::kMillisecond);

// The batch hot path of the verifier/model side (attestation model
// evaluation, ML-attack dataset generation): noiseless batch throughput in
// challenges/sec. The single-thread case is the lane-engine headline
// number tracked in BENCH_baseline.json.
void BM_PhotonicNoiselessBatch(benchmark::State& state) {
  puf::PhotonicPufConfig cfg;  // full-size: 64-bit challenge, 8 ports
  puf::PhotonicPuf device(cfg, 1, 0);
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  crypto::ChaChaDrbg rng(crypto::bytes_of("noiseless-batch-bench"));
  std::vector<puf::Challenge> challenges;
  for (int i = 0; i < 64; ++i) challenges.push_back(rng.generate(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_noiseless_batch(challenges, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(challenges.size()));
}
BENCHMARK(BM_PhotonicNoiselessBatch)
    ->Arg(1)
    ->Arg(hardware_threads())
    ->Unit(benchmark::kMillisecond);

void BM_PopulationFabrication(benchmark::State& state) {
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kFleet = 8;
  std::uint64_t wafer = 0;
  for (auto _ : state) {
    puf::PufPopulation population(cfg, ++wafer, kFleet, &pool);
    benchmark::DoNotOptimize(population.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFleet));
}
BENCHMARK(BM_PopulationFabrication)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(hardware_threads())
    ->Unit(benchmark::kMillisecond);

void BM_UniquenessSweep(benchmark::State& state) {
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  crypto::ChaChaDrbg rng(crypto::bytes_of("uniq-bench"));
  std::vector<crypto::Bytes> responses;
  for (int d = 0; d < 256; ++d) responses.push_back(rng.generate(64));
  const std::int64_t pairs =
      static_cast<std::int64_t>(responses.size()) *
      static_cast<std::int64_t>(responses.size() - 1) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::uniqueness(responses, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          pairs);
}
BENCHMARK(BM_UniquenessSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(hardware_threads())
    ->Unit(benchmark::kMillisecond);

void BM_NistSuite4kBits(benchmark::State& state) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("nist-bench"));
  const auto bits = metrics::bits_from_bytes(rng.generate(512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::nist_pass_fraction(bits));
  }
}
BENCHMARK(BM_NistSuite4kBits)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
