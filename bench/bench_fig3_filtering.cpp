// E1 / Fig. 3 — Bit-aliasing (Shannon entropy) vs reliability vs counter
// threshold, with the retained-CRP trade-off window.
//
// Reproduces the relationship of Fig. 3 on (a) an RO-PUF population with
// the counter threshold of ref. [13], and (b) the photonic PUF with the
// NEUROPULS photocurrent-amplitude threshold. Expected shape: entropy
// high and reliability lowest at threshold 0; as the threshold grows,
// reliability rises toward 1 while aliasing entropy decays (extreme
// margins are layout/design-systematic); the shaded trade-off window is
// the region where both clear their floors.
#include "bench_util.hpp"
#include "filtering/filter.hpp"

namespace {

using namespace neuropuls;

void print_ro_sweep() {
  bench::banner("E1 / Fig. 3 (a)", "RO PUF: counter-threshold filtering");
  puf::RoPufConfig cfg;
  cfg.oscillators = 64;
  cfg.layout_sigma_hz = 1.5e5;
  cfg.process_sigma_hz = 2.5e5;
  cfg.noise_sigma_hz = 5.0e4;
  const auto pop = filtering::measure_ro_population(
      cfg, 48, filtering::all_ro_pairs(64, 1024), 15, 42'000);

  std::vector<double> thresholds;
  for (int t = 0; t <= 140; t += 10) thresholds.push_back(t);
  const auto sweep = filtering::sweep_lower_threshold(pop, thresholds);

  std::printf("  %-18s %-12s %-18s %-10s\n", "counter threshold",
              "reliability", "aliasing entropy", "retained");
  for (const auto& p : sweep) {
    std::printf("  %-18.0f %-12.4f %-18.4f %-10.3f\n", p.threshold,
                p.reliability, p.aliasing_entropy, p.retained_fraction);
  }
  const auto window = filtering::tradeoff_window(sweep, 0.99, 0.78);
  if (window.empty()) {
    std::printf("  trade-off window (rel>=0.99, H>=0.78): EMPTY\n");
  } else {
    std::printf("  trade-off window (rel>=0.99, H>=0.78): thresholds %.0f..%.0f\n",
                sweep[window.front()].threshold, sweep[window.back()].threshold);
  }

  // The complete [13] filter uses BOTH bounds: lower for reliability,
  // upper to reject aliased (layout-dominated) extremes.
  std::printf("\n  full [lo, hi] window selection:\n");
  std::printf("  %-22s %-12s %-18s %-10s\n", "window", "reliability",
              "aliasing entropy", "retained");
  struct WindowCase {
    const char* name;
    double lo, hi;
  };
  for (const WindowCase& wc :
       {WindowCase{"none  [0, inf)", 0.0, 1e18},
        WindowCase{"floor [20, inf)", 20.0, 1e18},
        WindowCase{"both  [20, 80]", 20.0, 80.0},
        WindowCase{"both  [20, 50]", 20.0, 50.0}}) {
    const auto point = filtering::evaluate_window(pop, wc.lo, wc.hi);
    std::printf("  %-22s %-12.4f %-18.4f %-10.3f\n", wc.name,
                point.reliability, point.aliasing_entropy,
                point.retained_fraction);
  }
}

void print_photonic_sweep() {
  bench::banner("E1 / Fig. 3 (b)",
                "Photonic PUF: photocurrent-amplitude threshold (NEUROPULS adaptation)");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  const puf::Challenge challenge =
      crypto::from_hex("a5c3f01e");
  const auto pop =
      filtering::measure_photonic_population(cfg, 12, challenge, 9, 7'000);

  double max_margin = 0.0;
  for (const auto& crp : pop.crps) {
    for (double m : crp.margins) {
      max_margin = std::max(max_margin, std::fabs(m));
    }
  }
  std::vector<double> thresholds;
  for (int i = 0; i <= 12; ++i) {
    thresholds.push_back(max_margin * static_cast<double>(i) / 30.0);
  }
  const auto sweep = filtering::sweep_lower_threshold(pop, thresholds);

  std::printf("  %-22s %-12s %-18s %-10s\n", "|dI| threshold (uA)",
              "reliability", "aliasing entropy", "retained");
  for (const auto& p : sweep) {
    std::printf("  %-22.3f %-12.4f %-18.4f %-10.3f\n", p.threshold * 1e6,
                p.reliability, p.aliasing_entropy, p.retained_fraction);
  }
}

void print_tables() {
  print_ro_sweep();
  print_photonic_sweep();
}

void BM_RoPopulationMeasurement(benchmark::State& state) {
  puf::RoPufConfig cfg;
  cfg.oscillators = 32;
  const auto pairs = filtering::all_ro_pairs(32, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filtering::measure_ro_population(cfg, 8, pairs, 5, 1));
  }
}
BENCHMARK(BM_RoPopulationMeasurement)->Unit(benchmark::kMillisecond);

void BM_ThresholdSweep(benchmark::State& state) {
  puf::RoPufConfig cfg;
  cfg.oscillators = 32;
  const auto pop = filtering::measure_ro_population(
      cfg, 16, filtering::all_ro_pairs(32, 256), 9, 2);
  std::vector<double> thresholds;
  for (int t = 0; t <= 150; t += 5) thresholds.push_back(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filtering::sweep_lower_threshold(pop, thresholds));
  }
}
BENCHMARK(BM_ThresholdSweep)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
