// E7 / §IV — Side-channel resistance: power-analysis bit recovery vs
// trace count at electronic vs photonic leakage levels, plus the
// remanence-decay contrast.
#include "attacks/cpa.hpp"
#include "attacks/side_channel.hpp"
#include "bench_util.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

void print_trace_sweep() {
  bench::banner("E7 / §IV", "Power-analysis bit recovery vs trace count");
  puf::ArbiterPuf electronic_target(puf::ArbiterPufConfig{}, 13);
  puf::PhotonicPuf photonic_target(puf::small_photonic_config(), 13, 0);
  const puf::Challenge c_e(8, 0x3C);
  const puf::Challenge c_p(2, 0x3C);

  std::printf("  %-10s %-26s %-26s\n", "traces", "electronic leakage",
              "photonic leakage (-40 dB)");
  for (std::size_t traces : {10ul, 50ul, 200ul, 1000ul, 5000ul}) {
    const auto electronic = attacks::power_analysis_attack(
        electronic_target, c_e, traces, attacks::electronic_leakage(), 1);
    const auto photonic = attacks::power_analysis_attack(
        photonic_target, c_p, traces, attacks::photonic_leakage(), 1);
    std::printf("  %-10zu %-26.3f %-26.3f\n", traces,
                electronic.bit_recovery_accuracy,
                photonic.bit_recovery_accuracy);
  }
  bench::note("0.5 = chance, 1.0 = full response recovery. The electronic "
              "target collapses within hundreds of traces; the photonic "
              "leakage level needs ~10^4x more (out of reach in-field).");
}

void print_remanence_table() {
  bench::banner("E7 / §IV", "Remanence-decay window");
  puf::PhotonicPuf photonic_target(puf::small_photonic_config(), 13, 0);
  const double photonic_window = attacks::remanence_window_s(
      true, photonic_target.interrogation_time_s());
  const double sram_window = attacks::remanence_window_s(false, 0.0);
  std::printf("  %-30s %-20s\n", "technology", "exploitable window");
  std::printf("  %-30s %.1f ns\n", "photonic PUF (time-domain)",
              photonic_window * 1e9);
  std::printf("  %-30s %.1f s\n", "SRAM PUF (shared memory)", sram_window);
  std::printf("  ratio: %.1e\n", sram_window / photonic_window);
  bench::note("the photonic response 'is present only during the "
              "interrogation time and then disappears' (§IV) — below the "
              "100 ns bound.");
}

void print_cpa_table() {
  bench::banner("E7 / §IV",
                "CPA vs the Table I AES engine: traces to full key recovery");
  const crypto::Bytes key =
      crypto::from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const std::vector<std::size_t> budgets = {50, 200, 800, 3200, 12800};
  std::printf("  %-34s %-24s\n", "leakage (alpha, noise)",
              "traces to 16/16 key bytes");
  struct Case {
    const char* name;
    attacks::CpaLeakageModel model;
  };
  for (const Case& c :
       {Case{"exposed CMOS S-box (1.0, 2.0)", {1.0, 2.0}},
        Case{"-12 dB shielding (0.25, 2.0)", {0.25, 2.0}},
        Case{"-26 dB shielding (0.05, 2.0)", {0.05, 2.0}},
        Case{"-40 dB engine    (0.01, 2.0)", {0.01, 2.0}}}) {
    const std::size_t needed =
        attacks::traces_to_full_recovery(key, c.model, budgets, 11);
    if (needed == 0) {
      std::printf("  %-34s > %zu (not recovered)\n", c.name, budgets.back());
    } else {
      std::printf("  %-34s %zu\n", c.name, needed);
    }
  }
  bench::note("each 14 dB of leakage attenuation costs the attacker ~25x "
              "more traces; the hardware crypto boundary of Table I is "
              "what buys that attenuation.");
}

void print_tables() {
  print_trace_sweep();
  print_cpa_table();
  print_remanence_table();
}

void BM_PowerAnalysis1kTraces(benchmark::State& state) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 13);
  const puf::Challenge c(8, 0x3C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks::power_analysis_attack(
        target, c, 1000, attacks::electronic_leakage(), 7));
  }
}
BENCHMARK(BM_PowerAnalysis1kTraces)->Unit(benchmark::kMillisecond);

void BM_CpaAttack800Traces(benchmark::State& state) {
  const crypto::Bytes key =
      crypto::from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto traces =
      attacks::acquire_traces(key, 800, attacks::CpaLeakageModel{}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks::cpa_attack(traces, key));
  }
}
BENCHMARK(BM_CpaAttack800Traces)->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
