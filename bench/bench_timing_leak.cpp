// Timing-leak detection experiment (DESIGN.md "Security hygiene" layer).
//
// Prints a dudect-style t-statistic table for the stack's secret-handling
// primitives — the constant-time comparator, CMAC tag verification,
// HMAC-SHA256 verification — against the deliberately variable-time
// control, then times the harness itself so its cost per audited
// primitive is known.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "metrics/timing_leak.hpp"

namespace neuropuls {
namespace {

using metrics::TimingLeakConfig;
using metrics::TimingLeakReport;
using metrics::TimingTarget;

void print_row(const char* name, const TimingLeakReport& report) {
  std::printf("  %-28s %9.2f  %10.1f  %10.1f   %s\n", name,
              report.t_statistic, report.mean_fixed_ns,
              report.mean_random_ns,
              report.leaking ? "LEAKING" : "constant-time");
}

void print_leak_table() {
  TimingLeakConfig config;
  config.samples_per_class = 20000;
  config.warmup = 512;

  const crypto::Bytes secret(4096, 0x5A);
  const crypto::Bytes key16(16, 0x0F);
  const crypto::Bytes key32(32, 0x77);
  const crypto::Bytes message(256, 0x33);
  const crypto::Bytes good_tag = crypto::aes_cmac(key16, message);
  const crypto::Bytes good_mac = crypto::hmac_sha256(key32, message);

  std::printf("Timing-leak audit (dudect-style Welch t-test, |t| > %.1f "
              "flags a leak; %zu samples/class)\n",
              config.threshold, config.samples_per_class);
  std::printf("  %-28s %9s  %10s  %10s   %s\n", "target", "t-stat",
              "fixed ns", "random ns", "verdict");

  print_row("ct_equal (4 KiB)",
            measure_timing_leak(
                [&secret](crypto::ByteView input) {
                  volatile bool sink = crypto::ct_equal(input, secret);
                  (void)sink;
                },
                secret, config));
  print_row("CMAC tag verify (256 B)",
            measure_timing_leak(
                [&](crypto::ByteView input) {
                  const crypto::Bytes tag = crypto::aes_cmac(key16, input);
                  volatile bool sink = crypto::ct_equal(tag, good_tag);
                  (void)sink;
                },
                message, config));
  print_row("HMAC-SHA256 verify (256 B)",
            measure_timing_leak(
                [&](crypto::ByteView input) {
                  const crypto::Bytes mac = crypto::hmac_sha256(key32, input);
                  volatile bool sink = crypto::ct_equal(mac, good_mac);
                  (void)sink;
                },
                message, config));
  print_row("variable_time_equal CONTROL",
            measure_timing_leak(
                [&secret](crypto::ByteView input) {
                  volatile bool sink =
                      metrics::variable_time_equal(input, secret);
                  (void)sink;
                },
                secret, config));
  std::printf("\n");
}

void BM_HarnessCtEqual(benchmark::State& state) {
  // Cost of one full audit of ct_equal at the given buffer length.
  const crypto::Bytes secret(static_cast<std::size_t>(state.range(0)), 0x5A);
  TimingLeakConfig config;
  config.samples_per_class = 2000;
  config.warmup = 64;
  const TimingTarget target = [&secret](crypto::ByteView input) {
    volatile bool sink = crypto::ct_equal(input, secret);
    (void)sink;
  };
  for (auto _ : state) {
    config.seed++;
    benchmark::DoNotOptimize(measure_timing_leak(target, secret, config));
  }
}
BENCHMARK(BM_HarnessCtEqual)->Arg(64)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace neuropuls

int main(int argc, char** argv) {
  neuropuls::print_leak_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
