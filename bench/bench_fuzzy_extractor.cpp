// E8 / §II-B — Fuzzy-extractor key-failure rate vs raw bit error rate,
// with and without margin filtering.
//
// Expected shape: the failure rate is ~0 below the code's correction
// capability and cliffs to ~1 above it; applying the §II-B margin filter
// to the photonic PUF (dropping low-|margin| bits) shifts the usable
// noise range upward.
#include "bench_util.hpp"
#include "crypto/prng.hpp"
#include "ecc/fuzzy_extractor.hpp"
#include "filtering/filter.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

void print_ber_sweep() {
  bench::banner("E8 / §II-B",
                "Key-failure rate vs raw BER — BCH(127,64,t=10) x rep-5");
  const ecc::FuzzyExtractor fe = ecc::make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("e8"));
  rng::Xoshiro256 noise(1);

  std::printf("  %-10s %-16s %-14s\n", "raw BER", "failures/trials",
              "failure rate");
  for (double ber : {0.01, 0.04, 0.07, 0.10, 0.13, 0.16, 0.20, 0.30}) {
    int failures = 0;
    constexpr int kTrials = 60;
    for (int trial = 0; trial < kTrials; ++trial) {
      ecc::BitVec w(fe.response_bits());
      for (auto& b : w) b = noise.coin() ? 1 : 0;
      const auto enrolled = fe.generate(w, drbg);
      ecc::BitVec w_prime = w;
      for (auto& b : w_prime) {
        if (noise.bernoulli(ber)) b ^= 1;
      }
      const auto key = fe.reproduce(w_prime, enrolled.helper);
      failures += !(key && *key == enrolled.key);
    }
    std::printf("  %-10.2f %-16s %-14.3f\n", ber,
                (std::to_string(failures) + "/" + std::to_string(kTrials)).c_str(),
                static_cast<double>(failures) / kTrials);
  }
  bench::note("the cliff sits where rep-5 majority + BCH t=10 run out "
              "(raw BER ~ 0.18); below it keys are bit-exact.");
}

void print_filtering_gain() {
  bench::banner("E8 / §II-B",
                "Photonic key material: raw vs margin-filtered BER");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  // A noisier-than-default detector to make the effect visible.
  cfg.photodiode.dark_current = 100e-9;
  puf::PhotonicPuf device(cfg, 88, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e8f"));
  const puf::Challenge challenge = rng.generate(4);

  // Reference margins and bits.
  const auto reference = device.evaluate_analog(challenge, /*noisy=*/false);
  std::vector<double> flat_margins;
  for (const auto& row : reference) {
    for (double m : row) flat_margins.push_back(m);
  }

  // Measure per-bit flip rates over repeated noisy readings.
  constexpr int kReads = 40;
  std::vector<int> flips(flat_margins.size(), 0);
  for (int r = 0; r < kReads; ++r) {
    const auto noisy = device.evaluate_analog(challenge, /*noisy=*/true);
    std::size_t i = 0;
    for (std::size_t w = 0; w < noisy.size(); ++w) {
      for (std::size_t p = 0; p < noisy[w].size(); ++p, ++i) {
        flips[i] += (noisy[w][p] > 0) != (reference[w][p] > 0);
      }
    }
  }

  double max_margin = 0.0;
  for (double m : flat_margins) max_margin = std::max(max_margin, std::fabs(m));

  std::printf("  %-24s %-14s %-14s\n", "|margin| filter", "bits kept",
              "mean BER");
  for (double frac : {0.0, 0.05, 0.10, 0.20}) {
    const auto mask =
        filtering::online_mask(flat_margins, frac * max_margin);
    double ber = 0.0;
    int kept = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      ++kept;
      ber += static_cast<double>(flips[i]) / kReads;
    }
    std::printf("  %-24s %-14d %-14.4f\n",
                (">= " + std::to_string(static_cast<int>(frac * 100)) +
                 "% of max")
                    .c_str(),
                kept, kept ? ber / kept : 0.0);
  }
  bench::note("dropping small-margin bits buys the extractor BER headroom "
              "— the §II-B reliability filter in action.");
}

void print_tables() {
  print_ber_sweep();
  print_filtering_gain();
}

void BM_FuzzyGenerate(benchmark::State& state) {
  const ecc::FuzzyExtractor fe = ecc::make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("bench"));
  rng::Xoshiro256 noise(2);
  ecc::BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe.generate(w, drbg));
  }
}
BENCHMARK(BM_FuzzyGenerate)->Unit(benchmark::kMicrosecond);

void BM_FuzzyReproduce(benchmark::State& state) {
  const ecc::FuzzyExtractor fe = ecc::make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("bench"));
  rng::Xoshiro256 noise(3);
  ecc::BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);
  ecc::BitVec w_prime = w;
  for (auto& b : w_prime) {
    if (noise.bernoulli(0.06)) b ^= 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe.reproduce(w_prime, enrolled.helper));
  }
}
BENCHMARK(BM_FuzzyReproduce)->Unit(benchmark::kMicrosecond);

void BM_BchDecode(benchmark::State& state) {
  const ecc::BchCode code(7, 10);
  rng::Xoshiro256 rng(4);
  ecc::BitVec msg(code.k());
  for (auto& b : msg) b = rng.coin() ? 1 : 0;
  ecc::BitVec noisy = code.encode(msg);
  for (int e = 0; e < 8; ++e) noisy[rng.uniform_int(code.n())] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(noisy));
  }
}
BENCHMARK(BM_BchDecode)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
