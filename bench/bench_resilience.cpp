// E13 — Resilience: what graceful degradation costs and what it buys.
//
// Tables (deterministic, fixed seeds):
//   * session convergence vs symmetric drop rate — attempts, retry ticks,
//     and convergence fraction of the SessionDriver over a FaultyChannel;
//   * robust-readout overhead — evaluate() vs the k-of-n majority
//     evaluate_robust() used by derive_robust()/CRP re-enrollment.
//
// Timing cases (google-benchmark JSON for scripts/bench_regress.py):
//   * BM_AuthSessionAtDropPermille/{0,10,50} — full mutual-auth session
//     through the retry driver at 0%, 1%, and 5% frame loss;
//   * BM_PhotonicEvaluate vs BM_PhotonicEvaluateRobust — the raw majority
//     multiplier on the device hot path.
#include "bench_util.hpp"
#include "core/session_driver.hpp"
#include "crypto/sha256.hpp"
#include "faults/faulty_channel.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

struct SessionFixture {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
};

SessionFixture make_fixture() {
  SessionFixture f;
  f.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(),
                                             2024, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("bench-resilience"));
  const auto provisioned = core::provision(*f.puf, rng);
  const crypto::Bytes memory(4096, 0xA5);
  f.device = std::make_unique<core::AuthDevice>(*f.puf,
                                                provisioned.device_crp, memory);
  f.verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f.puf->challenge_bytes());
  return f;
}

void print_convergence_table() {
  bench::banner("E13", "Session convergence vs symmetric frame-drop rate");
  std::printf("  %-12s %-12s %-14s %-12s %-14s\n", "drop rate", "converged",
              "mean attempts", "poll ticks", "backoff ticks");
  for (const double drop : {0.0, 0.01, 0.05, 0.20}) {
    SessionFixture f = make_fixture();
    net::DuplexChannel channel;
    faults::FaultyChannel faulty(
        channel, faults::symmetric_faults(faults::symmetric_drop(drop)),
        0xBEEF);
    core::SessionDriver driver(channel, core::RetryPolicy{});
    constexpr unsigned kSessions = 40;
    unsigned converged = 0;
    std::uint64_t attempts = 0, polls = 0, backoff = 0;
    for (unsigned s = 0; s < kSessions; ++s) {
      const auto report =
          driver.run_mutual_auth(*f.verifier, *f.device, 1000 * (s + 1));
      if (report.result == core::SessionResult::kConverged) ++converged;
      attempts += report.attempts;
      polls += report.poll_ticks;
      backoff += report.backoff_ticks;
    }
    std::printf("  %-12.2f %u/%-10u %-14.2f %-12zu %-14zu\n", drop, converged,
                kSessions, static_cast<double>(attempts) / kSessions,
                static_cast<std::size_t>(polls),
                static_cast<std::size_t>(backoff));
  }
  bench::note("retry driver: 4 attempts, 8-poll receive budget, capped "
              "exponential backoff; convergence at <=1% loss is the "
              "tests/chaos invariant.");
}

void print_robust_overhead_table() {
  bench::banner("E13", "Robust (k-of-n majority) readout overhead");
  puf::PhotonicPuf device(puf::small_photonic_config(), 2024, 3);
  const puf::Challenge challenge(device.challenge_bytes(), 0x5A);
  const auto reference = device.evaluate_noiseless(challenge);
  std::printf("  %-12s %-16s %-18s\n", "readings", "evaluations", "mean BER");
  for (const unsigned readings : {1u, 3u, 5u, 7u}) {
    double err = 0.0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      const auto r = readings == 1 ? device.evaluate(challenge)
                                   : device.evaluate_robust(challenge,
                                                            readings);
      err += crypto::fractional_hamming_distance(r, reference);
    }
    std::printf("  %-12u %-16u %-18.4f\n", readings, readings,
                err / kTrials);
  }
  bench::note("evaluate_robust majority-votes n re-measurements; cost is "
              "linear in n, error falls with the binomial tail.");
}

void print_tables() {
  print_convergence_table();
  print_robust_overhead_table();
}

// Session throughput through the retry driver at 0 / 1% / 5% drop. The
// session base advances every iteration so session ids never collide.
void BM_AuthSessionAtDropPermille(benchmark::State& state) {
  SessionFixture f = make_fixture();
  net::DuplexChannel channel;
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  faults::FaultyChannel faulty(
      channel, faults::symmetric_faults(faults::symmetric_drop(drop)), 0xD0);
  core::SessionDriver driver(channel, core::RetryPolicy{});
  std::uint64_t base = 0;
  for (auto _ : state) {
    base += 1000;
    benchmark::DoNotOptimize(
        driver.run_mutual_auth(*f.verifier, *f.device, base));
  }
}
BENCHMARK(BM_AuthSessionAtDropPermille)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMicrosecond);

void BM_PhotonicEvaluate(benchmark::State& state) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 2024, 4);
  const puf::Challenge challenge(device.challenge_bytes(), 0xC3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate(challenge));
  }
}
BENCHMARK(BM_PhotonicEvaluate)->Unit(benchmark::kMicrosecond);

void BM_PhotonicEvaluateRobust(benchmark::State& state) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 2024, 4);
  const puf::Challenge challenge(device.challenge_bytes(), 0xC3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_robust(challenge, 5));
  }
}
BENCHMARK(BM_PhotonicEvaluateRobust)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
