// E17 — fleet-scale campaigns: enroll and authenticate a million
// devices at hardware speed (ROADMAP item 3).
//
// Tables (deterministic, fixed seeds):
//
//   1. Enrollment storm — the full fleet (NEUROPULS_FLEET_SCALE devices,
//      default 1,000,000; set it small for smoke runs) streamed into a
//      durable group-commit store through bounded chunks at 4 threads.
//      Reports enrollments/sec, CRPs/sec, the streaming uniqueness
//      estimate, and the peak-memory column (alloc-probe high-water +
//      VmHWM) asserted against a hard budget — the run aborts if the
//      bounded-memory promise breaks.
//   2. Batch vs naive — the same enrollment through the pre-fleet
//      per-device path (virtual evaluate, per-CRP insert, per-device
//      sync). Acceptance: the chunked batch path is >= 5x at 4 threads.
//   3. Threads x shards matrix — enrollments/sec as the worker pool and
//      lock-stripe counts sweep; the contention picture.
//   4. Authentication campaign — NEUROPULS_FLEET_SCALE/10 mutual-auth
//      sessions (default 100k) against the full store, in bounded
//      waves; auths/sec plus GK-sketch latency quantiles.
//   5. Rolling rotation under faults — monthly key-rotation sweeps over
//      a drifting, 1%-faulty-channel fleet; per-round convergence,
//      rotation counts, and the aging error-rate trajectory.
//
// Timing cases (merged into BENCH_baseline.json for bench_regress.py):
//   * BM_SyntheticPufBatch       — raw synthetic response harvest
//   * BM_FleetEnroll/{1,2,4}     — chunked batch enrollment, threads swept
//   * BM_FleetEnrollNaive        — per-device serial baseline
//   * BM_FleetAuthCampaign       — wave-scheduled mutual-auth sessions
//   * BM_FleetRotationSweep      — authenticate + rotate, full loop
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/alloc_probe.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "fleet/fleet.hpp"
#include "puf/crp_db.hpp"

NEUROPULS_DEFINE_ALLOC_PROBE()

namespace {

namespace bench = neuropuls::bench;
namespace io = neuropuls::common::io;
using neuropuls::common::ThreadPool;
using neuropuls::fleet::EnrollReport;
using neuropuls::fleet::FleetConfig;
using neuropuls::fleet::FleetSimulator;
using neuropuls::fleet::MemoryProbe;
using neuropuls::puf::CrpDatabase;
using neuropuls::puf::CrpDurabilityOptions;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "bench_fleet: ACCEPTANCE FAILURE: %s\n", what.c_str());
  std::exit(1);
}

FleetConfig fleet_config(std::size_t devices, std::size_t generations,
                         ThreadPool* pool) {
  FleetConfig config;
  config.devices = devices;
  config.generations = generations;
  config.seed = 0xE17F1EE7ULL;
  config.pool = pool;
  return config;
}

CrpDurabilityOptions durable_in(const std::string& dir) {
  CrpDurabilityOptions options;
  options.directory = dir;
  options.mode = CrpDurabilityOptions::Mode::kGroupCommit;
  return options;
}

double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void print_tables() {
  const std::size_t scale = env_size("NEUROPULS_FLEET_SCALE", 1'000'000);
  const std::size_t budget_mib = env_size("NEUROPULS_FLEET_BUDGET_MB", 1600);
  const std::size_t budget_bytes = budget_mib * 1024 * 1024;

  bench::banner("E17", "fleet-scale enrollment and lifecycle campaigns");
  std::printf("  fleet scale: %zu devices (NEUROPULS_FLEET_SCALE)\n", scale);
  std::printf("  memory budget: %zu MiB (NEUROPULS_FLEET_BUDGET_MB)\n",
              budget_mib);

  ThreadPool pool(4);

  // ---- Table 1: enrollment storm at full scale, durability on ----
  std::printf("\n  [1] enrollment storm — %zu devices x 2 CRPs, durable "
              "group-commit store, 4 threads\n", scale);
  neuropuls::common::alloc_probe::reset_peak();
  io::TempDir store_dir("np-bench-fleet");
  CrpDatabase db(8, durable_in(store_dir.path()));
  FleetConfig config = fleet_config(scale, 2, &pool);
  config.memory_budget_bytes = budget_bytes;
  FleetSimulator fleet(config, db);
  const EnrollReport storm = fleet.enroll();
  const std::uint64_t probe_peak = neuropuls::common::alloc_probe::peak_bytes();
  const MemoryProbe vm = MemoryProbe::read();
  std::printf("      devices      CRPs      sec   enroll/s     CRPs/s  "
              "uniq~   probe-peak  VmHWM\n");
  std::printf("    %9zu %9zu %8.2f %10.0f %10.0f  %.3f  %7.0f MiB %5.0f "
              "MiB\n",
              storm.devices, storm.crps, storm.seconds,
              storm.devices / storm.seconds, storm.crps / storm.seconds,
              storm.uniqueness_estimate, mib(probe_peak),
              mib(vm.vm_hwm_bytes));
  std::printf("      store: %zu CRPs in %zu shards, sampled %zu devices "
              "for uniqueness\n",
              db.size(), db.shard_count(), storm.sampled_devices);
  const std::uint64_t peak =
      std::max<std::uint64_t>(probe_peak, vm.vm_hwm_bytes);
  if (peak > budget_bytes) {
    fail("enrollment peak memory " + std::to_string(peak) +
         " B exceeds budget " + std::to_string(budget_bytes) + " B");
  }
  if (db.size() != storm.crps) {
    fail("store size " + std::to_string(db.size()) + " != harvested CRPs " +
         std::to_string(storm.crps));
  }

  // ---- Table 2: chunked batch path vs naive per-device path ----
  const std::size_t naive_devices = std::min<std::size_t>(
      2000, std::max<std::size_t>(scale / 500, 64));
  std::printf("\n  [2] batch vs naive per-device enrollment — %zu devices "
              "x 2 CRPs, durable, 4 threads\n", naive_devices);
  double batch_rate = 0.0;
  double naive_rate = 0.0;
  {
    io::TempDir dir("np-bench-fleet-batch");
    CrpDatabase batch_db(8, durable_in(dir.path()));
    FleetSimulator sim(fleet_config(naive_devices, 2, &pool), batch_db);
    const EnrollReport r = sim.enroll();
    batch_rate = r.devices / r.seconds;
  }
  {
    io::TempDir dir("np-bench-fleet-naive");
    CrpDatabase naive_db(8, durable_in(dir.path()));
    FleetSimulator sim(fleet_config(naive_devices, 2, &pool), naive_db);
    const EnrollReport r = sim.enroll_naive_serial();
    naive_rate = r.devices / r.seconds;
  }
  std::printf("      path      enroll/s\n");
  std::printf("      batch   %10.0f\n", batch_rate);
  std::printf("      naive   %10.0f\n", naive_rate);
  std::printf("      ratio   %9.1fx\n", batch_rate / naive_rate);
  if (batch_rate < 5.0 * naive_rate) {
    fail("batch enrollment " + std::to_string(batch_rate) +
         "/s is under 5x the naive path " + std::to_string(naive_rate) +
         "/s");
  }

  // ---- Table 3: threads x shards enrollment matrix ----
  const std::size_t matrix_devices =
      std::max<std::size_t>(scale / 20, 2000);
  std::printf("\n  [3] enrollments/sec vs threads x shards — %zu devices "
              "x 1 CRP, durable\n", matrix_devices);
  std::printf("      threads\\shards %10s %10s %10s\n", "1", "4", "16");
  for (const std::size_t threads : {1, 2, 4}) {
    ThreadPool cell_pool(threads);
    std::printf("      %14zu", threads);
    for (const std::size_t shards : {1, 4, 16}) {
      io::TempDir dir("np-bench-fleet-matrix");
      CrpDatabase cell_db(shards, durable_in(dir.path()));
      FleetSimulator sim(fleet_config(matrix_devices, 1, &cell_pool),
                         cell_db);
      const EnrollReport r = sim.enroll();
      std::printf(" %10.0f", r.devices / r.seconds);
    }
    std::printf("\n");
  }

  // ---- Table 4: authentication campaign against the full store ----
  const std::size_t auth_sessions = std::max<std::size_t>(scale / 10, 100);
  std::printf("\n  [4] auth campaign — %zu mutual-auth sessions across the "
              "%zu-device store, waves of 1024\n", auth_sessions, scale);
  auto campaign = fleet.run_auth_campaign(auth_sessions);
  std::printf("      sessions  converged  failed  skipped      sec    "
              "auth/s  polls p50/p90/p99\n");
  std::printf("    %9zu  %9zu %7zu %8zu %8.2f %9.0f  %.0f/%.0f/%.0f\n",
              campaign.sessions, campaign.converged, campaign.failed,
              campaign.skipped, campaign.seconds,
              campaign.sessions / campaign.seconds,
              campaign.poll_ticks.quantile(0.50),
              campaign.poll_ticks.quantile(0.90),
              campaign.poll_ticks.quantile(0.99));
  if (campaign.converged != campaign.sessions) {
    fail("auth campaign: " + std::to_string(campaign.converged) + " of " +
         std::to_string(campaign.sessions) + " sessions converged");
  }
  const MemoryProbe vm_after = MemoryProbe::read();
  if (vm_after.vm_hwm_bytes > budget_bytes) {
    fail("campaign peak RSS exceeds budget");
  }
  std::printf("      peak after campaign: probe %.0f MiB, VmHWM %.0f MiB "
              "(budget %zu MiB)\n",
              mib(neuropuls::common::alloc_probe::peak_bytes()),
              mib(vm_after.vm_hwm_bytes), budget_mib);

  // ---- Table 5: rolling rotation under 1% channel faults + drift ----
  const std::size_t rot_devices = std::max<std::size_t>(scale / 100, 500);
  std::printf("\n  [5] rolling monthly rotation — %zu devices, 1%% faulty "
              "channels, aging drift\n", rot_devices);
  io::TempDir rot_dir("np-bench-fleet-rot");
  CrpDatabase rot_db(8, durable_in(rot_dir.path()));
  FleetConfig rot_config = fleet_config(rot_devices, 1, &pool);
  rot_config.faulty_device_rate = 0.01;
  rot_config.fault_rates.drop = 0.05;
  rot_config.fault_rates.corrupt = 0.02;
  rot_config.drift.laser_droop_per_day = 2e-4;
  rot_config.drift.thermal_spike_probability = 0.05;
  rot_config.drift.thermal_magnitude_kelvin = 4.0;
  rot_config.drift.relative_spread = 0.5;
  rot_config.puf.base_error_rate = 0.01;
  rot_config.puf.aging_error_gain = 0.05;
  rot_config.puf.thermal_error_gain = 0.002;
  FleetSimulator rot_fleet(rot_config, rot_db);
  (void)rot_fleet.enroll();
  std::printf("      month  rotated  failed  skipped   err(dev0)   sec\n");
  for (int month = 1; month <= 3; ++month) {
    rot_fleet.advance_days(30);
    const auto sweep = rot_fleet.run_rotation_sweep();
    std::printf("      %5d %8zu %7zu %8zu     %.4f %6.2f\n", month,
                sweep.rotated, sweep.failed, sweep.skipped,
                rot_fleet.make_device(0).error_rate(), sweep.seconds);
  }
  if (rot_fleet.count_keyless() != 0) {
    fail("rotation left " + std::to_string(rot_fleet.count_keyless()) +
         " devices keyless");
  }
}

// ---- timing cases ----

void BM_SyntheticPufBatch(benchmark::State& state) {
  const neuropuls::fleet::SyntheticPuf puf({}, 0xBEEF);
  constexpr std::size_t kBatch = 4096;
  std::vector<std::uint64_t> challenges(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) challenges[i] = i * 0x9E3779B9ULL;
  std::vector<std::uint8_t> out(kBatch * puf.response_bytes());
  for (auto _ : state) {
    puf.evaluate_noiseless_batch_into(challenges.data(), kBatch, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_SyntheticPufBatch)->Unit(benchmark::kMicrosecond);

void BM_FleetEnroll(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kDevices = 8192;
  ThreadPool pool(threads);
  for (auto _ : state) {
    CrpDatabase db(8);
    FleetSimulator sim(fleet_config(kDevices, 1, &pool), db);
    const EnrollReport r = sim.enroll();
    benchmark::DoNotOptimize(r.crps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDevices);
}
BENCHMARK(BM_FleetEnroll)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_FleetEnrollNaive(benchmark::State& state) {
  constexpr std::size_t kDevices = 2048;
  ThreadPool pool(1);
  for (auto _ : state) {
    CrpDatabase db(8);
    FleetSimulator sim(fleet_config(kDevices, 1, &pool), db);
    const EnrollReport r = sim.enroll_naive_serial();
    benchmark::DoNotOptimize(r.crps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDevices);
}
BENCHMARK(BM_FleetEnrollNaive)->Unit(benchmark::kMillisecond);

void BM_FleetAuthCampaign(benchmark::State& state) {
  constexpr std::size_t kDevices = 4096;
  constexpr std::size_t kSessions = 512;
  ThreadPool pool(2);
  CrpDatabase db(8);
  FleetSimulator sim(fleet_config(kDevices, 1, &pool), db);
  (void)sim.enroll();
  for (auto _ : state) {
    const auto report = sim.run_auth_campaign(kSessions);
    if (report.converged != kSessions) {
      state.SkipWithError("campaign sessions failed");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}
BENCHMARK(BM_FleetAuthCampaign)->Unit(benchmark::kMillisecond);

void BM_FleetRotationSweep(benchmark::State& state) {
  constexpr std::size_t kDevices = 2048;
  ThreadPool pool(2);
  for (auto _ : state) {
    state.PauseTiming();
    CrpDatabase db(8);
    FleetSimulator sim(fleet_config(kDevices, 1, &pool), db);
    (void)sim.enroll();
    state.ResumeTiming();
    const auto sweep = sim.run_rotation_sweep();
    benchmark::DoNotOptimize(sweep.rotated);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDevices);
}
BENCHMARK(BM_FleetRotationSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return neuropuls::bench::run_bench_main(argc, argv, print_tables);
}
