// Shared helpers for the experiment benches.
//
// Every bench binary prints its experiment's paper-shaped table(s) first
// (deterministic, fixed seeds) and then runs its google-benchmark timing
// cases, so `for b in build/bench/*; do $b; done` regenerates the whole
// evaluation.
//
// Machine-readable output: every bench accepts the stock google-benchmark
// flags (`--benchmark_out=FILE --benchmark_out_format=json`), and when the
// NEUROPULS_BENCH_JSON environment variable names a directory the bench
// writes `BENCH_<binary>.json` there by default — the files
// `scripts/bench_regress.py` diffs against a committed baseline.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace neuropuls::bench {

inline void banner(const std::string& experiment, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// Standard bench main body: print the paper tables, then run the
/// google-benchmark timing cases. When no --benchmark_out flag was given
/// and NEUROPULS_BENCH_JSON is set, the JSON report defaults to
/// $NEUROPULS_BENCH_JSON/BENCH_<basename(argv[0])>.json.
inline int run_bench_main(int argc, char** argv, void (*print_tables)()) {
  print_tables();

  std::vector<std::string> args(argv, argv + argc);
  bool has_out = false;
  for (const auto& arg : args) {
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  const char* json_dir = std::getenv("NEUROPULS_BENCH_JSON");
  if (!has_out && json_dir != nullptr && *json_dir != '\0') {
    std::string name = args.empty() ? std::string("bench") : args.front();
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    args.push_back(std::string("--benchmark_out=") + json_dir + "/BENCH_" +
                   name + ".json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());

  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#define NEUROPULS_BENCH_MAIN(print_tables_fn)                          \
  int main(int argc, char** argv) {                                    \
    return neuropuls::bench::run_bench_main(argc, argv, print_tables_fn); \
  }

}  // namespace neuropuls::bench
