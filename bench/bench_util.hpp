// Shared helpers for the experiment benches.
//
// Every bench binary prints its experiment's paper-shaped table(s) first
// (deterministic, fixed seeds) and then runs its google-benchmark timing
// cases, so `for b in build/bench/*; do $b; done` regenerates the whole
// evaluation.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace neuropuls::bench {

inline void banner(const std::string& experiment, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// Standard main body: print tables, then run benchmark timing cases.
#define NEUROPULS_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                                 \
    print_tables_fn();                                              \
    benchmark::Initialize(&argc, argv);                             \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                            \
    benchmark::Shutdown();                                          \
    return 0;                                                       \
  }

}  // namespace neuropuls::bench
