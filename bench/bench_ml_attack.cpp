// E6 / §IV — Machine-learning modelling attack resistance: prediction
// accuracy vs CRP budget for arbiter, XOR-arbiter, photonic, and
// challenge-encrypted targets.
//
// Expected shape: the plain arbiter PUF collapses (>95% accuracy) within
// a few thousand CRPs; the XOR variant resists longer; the photonic PUF
// and the ref.-[30] challenge-encryption wrapper stay near chance across
// the whole budget sweep.
#include <memory>
#include <thread>

#include "attacks/ml_attack.hpp"
#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "bench_util.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/composite.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

void print_budget_sweep() {
  bench::banner("E6 / §IV", "LR attack accuracy vs training-CRP budget");

  const std::vector<std::size_t> budgets = {100, 500, 2000, 8000, 20000};

  puf::ArbiterPuf arbiter(puf::ArbiterPufConfig{}, 11);
  puf::ArbiterPufConfig xor_cfg;
  xor_cfg.xor_chains = 5;
  puf::ArbiterPuf xor_arbiter(xor_cfg, 11);
  puf::PhotonicPuf photonic(puf::small_photonic_config(), 11, 0);
  auto enc_inner = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, 11);
  puf::EncryptedChallengePuf encrypted(std::move(enc_inner),
                                       crypto::bytes_of("weak-puf key"));

  const auto parity = attacks::parity_feature_map(arbiter.stages());
  const auto raw = attacks::raw_feature_map();

  std::printf("  %-10s %-12s %-14s %-12s %-16s\n", "CRPs", "arbiter",
              "xor-arbiter", "photonic", "enc-challenge");
  for (std::size_t budget : budgets) {
    attacks::AttackConfig config;
    config.training_crps = budget;
    config.test_crps = 500;
    const double a_arb =
        attacks::model_attack(arbiter, parity, config).test_accuracy;
    const double a_xor =
        attacks::model_attack(xor_arbiter, parity, config).test_accuracy;
    attacks::AttackConfig photonic_config = config;
    photonic_config.test_crps = 300;
    const double a_ph = attacks::mean_attack_accuracy(photonic, raw,
                                                      photonic_config, 4);
    const double a_enc =
        attacks::model_attack(encrypted, parity, config).test_accuracy;
    std::printf("  %-10zu %-12.3f %-14.3f %-12.3f %-16.3f\n", budget, a_arb,
                a_xor, a_ph, a_enc);
  }
  bench::note("0.5 = chance. The arbiter PUF breaks; the photonic PUF and "
              "the challenge-encryption wrapper stay near chance — the "
              "paper's modelling-resistance claim.");
}

void print_tables() { print_budget_sweep(); }

void BM_TrainAttackArbiter2k(benchmark::State& state) {
  puf::ArbiterPuf arbiter(puf::ArbiterPufConfig{}, 3);
  const auto parity = attacks::parity_feature_map(arbiter.stages());
  attacks::AttackConfig config;
  config.training_crps = 2000;
  config.test_crps = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks::model_attack(arbiter, parity, config));
  }
}
BENCHMARK(BM_TrainAttackArbiter2k)->Unit(benchmark::kMillisecond);

void BM_CrpCollectionPhotonic(benchmark::State& state) {
  puf::PhotonicPuf photonic(puf::small_photonic_config(), 3, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("collect"));
  for (auto _ : state) {
    const auto c = rng.generate(photonic.challenge_bytes());
    benchmark::DoNotOptimize(photonic.evaluate(c));
  }
}
BENCHMARK(BM_CrpCollectionPhotonic)->Unit(benchmark::kMicrosecond);

// CRP dataset collection through the batch engine — the attack's hot
// loop, at 1/2/4/hardware threads (Arg = pool width), items = CRPs.
void BM_CrpCollectionPhotonicBatch(benchmark::State& state) {
  puf::PhotonicPuf photonic(puf::small_photonic_config(), 3, 0);
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  crypto::ChaChaDrbg rng(crypto::bytes_of("collect"));
  std::vector<puf::Challenge> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back(rng.generate(photonic.challenge_bytes()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(photonic.evaluate_batch(batch, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CrpCollectionPhotonicBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(common::ThreadPool::default_thread_count()))
    ->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
