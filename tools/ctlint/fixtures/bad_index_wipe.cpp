// Fixture: secret-indexed table lookups (cache-timing oracle) and secrets
// that leave scope without a wipe — plus the compliant variants that must
// stay quiet. Lint input only.
#include "common/secret.hpp"
#include "crypto/bytes.hpp"

namespace fixture {

extern const unsigned char kSbox[256];

unsigned char leaky_sbox_lookup() {
  neuropuls::crypto::Bytes key_byte(1, 0x3C);  // ctlint:secret  // ctlint:expect(missing-wipe)
  // The cache line touched depends on the key: CPA fodder.
  return kSbox[key_byte[0]];  // ctlint:expect(secret-index)
}

unsigned char masked_lookup_is_fine(unsigned char public_index) {
  // No secret inside the brackets -> no finding.
  return kSbox[public_index & 0xFF];
}

void forgot_to_wipe() {
  neuropuls::crypto::Bytes session_secret(32, 0);  // ctlint:secret  // ctlint:expect(missing-wipe)
  (void)session_secret;
}  // scope ends, residue stays on the heap

void wiped_properly() {
  neuropuls::crypto::Bytes root_key(32, 0);  // ctlint:secret
  (void)root_key;
  neuropuls::crypto::secure_wipe(root_key);
}

void secret_bytes_is_exempt() {
  // SecretBytes wipes itself on destruction; no annotation debt.
  neuropuls::common::SecretBytes vault;  // ctlint:secret
  (void)vault.size();
}

void method_wipe_counts() {
  neuropuls::common::SecretBytes sk;
  neuropuls::crypto::Bytes mirror(16, 1);  // ctlint:secret
  (void)sk;
  mirror.clear();
  // A named .wipe() call also satisfies the rule (SecretBytes member
  // mirrors exist transiently in protocol code).
  // ...except clear() alone is NOT a wipe; do it right:
  neuropuls::crypto::secure_wipe(mirror);
}

void suppressed_wipe_debt() {
  // ctlint:allow(missing-wipe) buffer is all-zero test padding, nothing secret survives
  neuropuls::crypto::Bytes padding(64, 0);  // ctlint:secret
  (void)padding;
}

}  // namespace fixture
