// ctlint fixture: the file-I/O arm of the blocking-under-lock pass.
// Lint-only — never compiled.
//
// Covers: write/fsync-family calls while a scoped lock is live (the
// pattern the WAL group-commit protocol exists to prevent); the
// unlock()/lock() gap; scope exit; the encode-then-write split done
// right; and suppression.

#include <cstdio>

#include "common/io.hpp"
#include "common/mutex.hpp"
#include "crypto/bytes.hpp"

namespace fixture {

void io_while_held(neuropuls::common::Mutex& mu,
                   neuropuls::common::io::File& log,
                   neuropuls::crypto::Bytes& batch, std::FILE* stream,
                   int fd) {
  neuropuls::common::MutexLock guard(mu);
  log.write_all(batch);  // ctlint:expect(blocking-under-lock)
  log.sync();
  ::write(fd, batch.data(), batch.size());  // ctlint:expect(blocking-under-lock)
  ::pwrite(fd, batch.data(), batch.size(), 0);  // ctlint:expect(blocking-under-lock)
  ::fwrite(batch.data(), 1, batch.size(), stream);  // ctlint:expect(blocking-under-lock)
  ::fsync(fd);  // ctlint:expect(blocking-under-lock)
  ::fdatasync(fd);  // ctlint:expect(blocking-under-lock)
  std::fflush(stream);
}

// The toggle: between unlock() and lock() the section is not critical.
void io_in_gap(neuropuls::common::Mutex& mu,
               neuropuls::common::io::File& log,
               neuropuls::crypto::Bytes& batch) {
  neuropuls::common::MutexLock guard(mu);
  guard.unlock();
  log.write_all(batch);
  guard.lock();
  log.write_all(batch);  // ctlint:expect(blocking-under-lock)
}

// The group-commit shape done right: encode under the lock, swap the
// buffer out, write and fsync after the scope releases it.
void encode_then_write(neuropuls::common::Mutex& mu,
                       neuropuls::common::io::File& log,
                       neuropuls::crypto::Bytes& pending,
                       neuropuls::crypto::Bytes& batch) {
  {
    neuropuls::common::MutexLock guard(mu);
    neuropuls::crypto::append_u64_be(pending, 42);
    batch.swap(pending);
  }
  log.write_all(batch);
  log.sync();
}

// A reviewed exception (e.g. a shutdown path) can be suppressed.
void reviewed_io(neuropuls::common::Mutex& mu,
                 neuropuls::common::io::File& log,
                 neuropuls::crypto::Bytes& batch) {
  neuropuls::common::MutexLock guard(mu);
  // ctlint:allow(blocking-under-lock) fixture: single-threaded shutdown
  log.write_all(batch);
}

}  // namespace fixture
