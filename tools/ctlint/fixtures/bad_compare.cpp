// Fixture: every way a secret comparison can go wrong, plus the sanctioned
// forms. Each expect-annotated line MUST fire; unannotated lines must
// stay quiet. This file is lint input only — it is never compiled.
#include <cstring>

#include "crypto/bytes.hpp"

namespace fixture {

bool check_tag(const neuropuls::crypto::Bytes& tag_input) {
  neuropuls::crypto::Bytes expected_tag(16, 0x5A);  // ctlint:secret
  // Short-circuit equality on a secret: classic timing oracle.
  if (expected_tag == tag_input) {  // ctlint:expect(secret-compare)
    return true;
  }
  if (expected_tag != tag_input) {  // ctlint:expect(secret-compare)
    return false;
  }
  // memcmp bails at the first differing byte.
  if (std::memcmp(expected_tag.data(), tag_input.data(), 16) == 0) {  // ctlint:expect(secret-compare)
    return true;
  }
  // std::equal is memcmp in a range costume.
  (void)std::equal(expected_tag.begin(), expected_tag.end(),  // ctlint:expect(secret-compare)
                   tag_input.begin());
  // The sanctioned comparison never fires.
  const bool ok = neuropuls::crypto::ct_equal(expected_tag, tag_input);
  neuropuls::crypto::secure_wipe(expected_tag);
  return ok;
}

bool unmarked_buffers_are_fine(const neuropuls::crypto::Bytes& a,
                               const neuropuls::crypto::Bytes& b) {
  // Public data may use ==; no annotation, no finding.
  return a == b;
}

}  // namespace fixture
