// ctlint fixture: the lock-order pass. Lint-only — never compiled.
//
// Covers: a two-mutex acquisition cycle (both edges flagged at their
// acquisition sites), a lexical double-acquire (self-edge), a ShardLock
// taken under an engine lock, and a suppressed edge that keeps the
// graph acyclic.

#include "common/mutex.hpp"
#include "puf/crp_db.hpp"

namespace fixture {

struct TwoMutexes {
  neuropuls::common::Mutex mu_a;
  neuropuls::common::Mutex mu_b;
  neuropuls::common::Mutex mu_r;
  neuropuls::common::Mutex mu_c;
  neuropuls::common::Mutex mu_d;
};

struct Engine {
  neuropuls::common::Mutex sched_mutex;
};

struct Shard {
  neuropuls::common::Mutex mutex;
};

// One caller takes a before b...
void first(TwoMutexes& f) {
  neuropuls::common::MutexLock outer(f.mu_a);
  neuropuls::common::MutexLock inner(f.mu_b);  // ctlint:expect(lock-order)
}

// ...another takes b before a: a cycle, flagged at both edges.
void second(TwoMutexes& f) {
  neuropuls::common::MutexLock outer(f.mu_b);
  neuropuls::common::MutexLock inner(f.mu_a);  // ctlint:expect(lock-order)
}

// Lexically visible double-acquire: the self-edge mu_r -> mu_r.
void reentrant(TwoMutexes& f) {
  neuropuls::common::MutexLock once(f.mu_r);
  neuropuls::common::MutexLock twice(f.mu_r);  // ctlint:expect(lock-order)
}

// Shard locks are leaves of the order: never under an engine lock.
void shard_under_engine(Engine& eng, const Shard& shard) {
  neuropuls::common::MutexLock sched(eng.sched_mutex);
  ShardLock guard(shard);  // ctlint:expect(lock-order)
}

// The compliant direction of a documented pair stays quiet...
void documented_order(TwoMutexes& f) {
  neuropuls::common::MutexLock outer(f.mu_c);
  neuropuls::common::MutexLock inner(f.mu_d);
}

// ...and a reviewed inversion is suppressed edge-by-edge, so the graph
// stays acyclic and neither site fires.
void reviewed_inversion(TwoMutexes& f) {
  neuropuls::common::MutexLock outer(f.mu_d);
  // ctlint:allow(lock-order) fixture: reviewed inversion, edge dropped
  neuropuls::common::MutexLock inner(f.mu_c);
}

// Release-before-acquire breaks the edge: no overlap, no ordering.
void handoff(TwoMutexes& f) {
  neuropuls::common::MutexLock outer(f.mu_b);
  outer.unlock();
  neuropuls::common::MutexLock inner(f.mu_a);
}

}  // namespace fixture
