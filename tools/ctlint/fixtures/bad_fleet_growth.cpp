// ctlint fixture: the fleet-growth pass. Lint-only — never compiled.
//
// Covers: per-device appends into member (fleet-lifetime) containers —
// the O(fleet) memory leak the fleet simulator's bounded-memory contract
// forbids — across for/while/range-for device loops and pointer
// receivers; plus the sanctioned patterns: bounded local staging inside
// the loop, member growth outside any device loop, non-device loops,
// and suppression with a reason.

#include <cstddef>
#include <vector>

namespace fixture {

struct Simulator {
  std::vector<int> reports_;
  std::vector<int> failures_;
  std::vector<int>* journal_;
  std::size_t devices = 0;
};

// The bug this pass exists for: one append per device, fleet lifetime.
void accumulate_per_device(Simulator& sim) {
  for (std::size_t device = 0; device < sim.devices; ++device) {
    sim.reports_.push_back(1);   // ctlint:expect(fleet-growth)
    sim.failures_.emplace_back(2);  // ctlint:expect(fleet-growth)
  }
}

// Range-for over devices and a pointer receiver are the same hazard.
void accumulate_range_for(Simulator& sim, const std::vector<int>& fleet) {
  for (const int device_id : fleet) {
    sim.journal_->push_back(device_id);  // ctlint:expect(fleet-growth)
  }
}

// while-loops speak the same vocabulary.
void accumulate_while(Simulator& sim) {
  std::size_t device = 0;
  while (device < sim.devices) {
    sim.reports_.push_back(1);  // ctlint:expect(fleet-growth)
    ++device;
  }
}

// Sanctioned: bounded local staging, flushed per chunk — the buffer's
// lifetime is the loop body's enclosing scope, not the fleet's.
void staged_harvest(Simulator& sim) {
  std::vector<int> staging;
  for (std::size_t device = 0; device < sim.devices; ++device) {
    staging.push_back(1);
  }
}

// Sanctioned: member growth outside any device loop (setup/config).
void configure(Simulator& sim) {
  sim.reports_.push_back(0);
  for (std::size_t i = 0; i < 8; ++i) {
    sim.failures_.push_back(static_cast<int>(i));  // not a device loop
  }
}

// After the device loop closes, member growth is fine again.
void summarize(Simulator& sim) {
  for (std::size_t device = 0; device < sim.devices; ++device) {
    staged_harvest(sim);
  }
  sim.reports_.push_back(1);
}

// A reviewed accumulation (e.g. a test over a 4-device toy fleet) can
// be suppressed, with a reason.
void reviewed(Simulator& sim) {
  for (std::size_t device = 0; device < sim.devices; ++device) {
    // ctlint:allow(fleet-growth) fixture: 4-device toy fleet in a test
    sim.reports_.push_back(1);
  }
}

}  // namespace fixture
