// Fixture: the explicit named form of the secret annotation, needed when
// the declarator heuristic cannot see the name (C arrays,
// multi-declarators). Lint input only.
#include <cstdint>

namespace fixture {

extern const std::uint8_t kTable[256];

std::uint8_t c_array_secret() {
  std::uint8_t key[32] = {0};  // ctlint:secret(key)  // ctlint:expect(missing-wipe)
  key[0] = 1;
  return kTable[key[7]];  // ctlint:expect(secret-index)
}

bool named_compare(const std::uint8_t* probe) {
  std::uint8_t mac[16] = {0};  // ctlint:secret(mac)
  bool same = mac[0] == probe[0];  // ctlint:expect(secret-compare)
  neuropuls::crypto::secure_wipe(mac, sizeof(mac));
  return same;
}

}  // namespace fixture
