// ctlint fixture: the atomic-misuse pass. Lint-only — never compiled.
//
// Covers: a relaxed RMW paired with a default (seq_cst) load, a relaxed
// store paired with an acquire load, consistent-ordering members that
// stay quiet, raw volatile (flagged) vs an asm clobber line (exempt) vs
// a suppressed wipe barrier.

#include <atomic>

namespace fixture {

struct Counters {
  std::atomic<unsigned long> hits{0};
  std::atomic<unsigned long> ticks{0};
  std::atomic<bool> flag{false};
  std::atomic<bool> done{false};
};

unsigned long mixed_rmw(Counters& c) {
  c.hits.fetch_add(1, std::memory_order_relaxed);
  return c.hits.load();  // ctlint:expect(atomic-misuse)
}

void relaxed_publish(Counters& c) {
  c.flag.store(true, std::memory_order_relaxed);
}

bool acquire_consume(const Counters& c) {
  return c.flag.load(std::memory_order_acquire);  // ctlint:expect(atomic-misuse)
}

// Consistent relaxed counter: quiet.
unsigned long relaxed_counter(Counters& c) {
  c.ticks.fetch_add(1, std::memory_order_relaxed);
  return c.ticks.load(std::memory_order_relaxed);
}

// Consistent seq_cst flag: quiet.
bool seq_cst_flag(Counters& c) {
  c.done.store(true);
  return c.done.load();
}

volatile int spin_gate = 0;  // ctlint:expect(atomic-misuse)

// An asm clobber's volatile qualifier is not data synchronization.
void compiler_barrier() {
  asm volatile("" : : : "memory");
}

// The sanctioned wipe idiom is suppressed where it is used.
void wipe_barrier(void* data, unsigned long size) {
  // ctlint:allow(atomic-misuse) dead-store barrier, not synchronization
  volatile unsigned char* p = static_cast<volatile unsigned char*>(data);
  for (unsigned long i = 0; i < size; ++i) p[i] = 0;
}

}  // namespace fixture
