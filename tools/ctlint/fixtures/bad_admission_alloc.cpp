// ctlint fixture: the admission-alloc pass. Lint-only — never compiled.
//
// Covers: container growth while the admission controller's lock is
// held (the flood-facing fast path must never allocate), growth under a
// *different* lock (not this rule's business — the generic alloc rules
// cover explicit `new`/make_*), the unlock() gap, nested sections, and
// suppression.

#include <vector>

#include "common/mutex.hpp"

namespace fixture {

struct Controller {
  neuropuls::common::Mutex admission_mutex_;
  std::vector<int> clients_;
  std::vector<int> half_open_;
};

void growth_on_the_fast_path(Controller& ctl) {
  neuropuls::common::MutexLock lock(ctl.admission_mutex_);
  ctl.clients_.push_back(1);       // ctlint:expect(admission-alloc)
  ctl.half_open_.emplace_back(2);  // ctlint:expect(admission-alloc)
  ctl.clients_.resize(64);         // ctlint:expect(admission-alloc)
  ctl.clients_.reserve(128);       // ctlint:expect(admission-alloc)
}

// Growth in the unlock() gap is not on the fast path.
void growth_in_gap(Controller& ctl) {
  neuropuls::common::MutexLock lock(ctl.admission_mutex_);
  lock.unlock();
  ctl.clients_.push_back(1);
  lock.lock();
  ctl.clients_.push_back(2);  // ctlint:expect(admission-alloc)
}

// A nested inner lock must not hide the live admission lock.
void growth_under_nested_lock(Controller& ctl,
                              neuropuls::common::Mutex& other) {
  neuropuls::common::MutexLock lock(ctl.admission_mutex_);
  neuropuls::common::MutexLock inner(other);
  ctl.clients_.push_back(1);  // ctlint:expect(admission-alloc)
}

// Growth under some unrelated lock is not this rule's concern.
void growth_under_other_lock(Controller& ctl,
                             neuropuls::common::Mutex& other) {
  neuropuls::common::MutexLock lock(other);
  ctl.clients_.push_back(1);
}

// Constructor-time preallocation takes no lock and is the sanctioned
// pattern; after scope exit the lock is gone.
void preallocate(Controller& ctl) {
  {
    neuropuls::common::MutexLock lock(ctl.admission_mutex_);
  }
  ctl.clients_.reserve(1024);
}

// A reviewed slow-path growth can be suppressed, with a reason.
void reviewed_growth(Controller& ctl) {
  neuropuls::common::MutexLock lock(ctl.admission_mutex_);
  // ctlint:allow(admission-alloc) fixture: cold reconfiguration path
  ctl.clients_.resize(2048);
}

}  // namespace fixture
