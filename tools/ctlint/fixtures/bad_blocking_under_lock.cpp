// ctlint fixture: the blocking-under-lock pass. Lint-only — never
// compiled.
//
// Covers: parking, channel receives, and allocation while a scoped lock
// is live; the unlock()/lock() toggle; scope exit; and suppression.

#include <memory>

#include "common/mutex.hpp"
#include "common/parallel.hpp"
#include "net/channel.hpp"

namespace fixture {

void blocking_while_held(neuropuls::common::Mutex& mu,
                         neuropuls::common::ParkingLot& lot,
                         neuropuls::net::DuplexChannel& chan) {
  using neuropuls::net::Direction;
  neuropuls::common::MutexLock guard(mu);
  lot.park();  // ctlint:expect(blocking-under-lock)
  auto one = chan.receive(Direction::kAtoB);  // ctlint:expect(blocking-under-lock)
  auto two = chan.receive_with_budget(Direction::kBtoA, 4);  // ctlint:expect(blocking-under-lock)
  auto raw = new int[4];  // ctlint:expect(blocking-under-lock)
  auto owned = std::make_unique<int>(1);  // ctlint:expect(blocking-under-lock)
  delete[] raw;
}

// The toggle: between unlock() and lock() the section is not critical.
void blocking_in_gap(neuropuls::common::Mutex& mu,
                     neuropuls::common::ParkingLot& lot) {
  neuropuls::common::MutexLock guard(mu);
  guard.unlock();
  lot.park();
  guard.lock();
  lot.park();  // ctlint:expect(blocking-under-lock)
}

// Scope exit releases: allocation after the block is fine.
void allocation_after_scope(neuropuls::common::Mutex& mu) {
  {
    neuropuls::common::MutexLock guard(mu);
  }
  auto shared = std::make_shared<int>(2);
  (void)shared;
}

// A reviewed pre-sized allocation under a lock can be suppressed.
void reviewed_allocation(neuropuls::common::Mutex& mu) {
  neuropuls::common::MutexLock guard(mu);
  // ctlint:allow(blocking-under-lock) fixture: one-time warm-up alloc
  auto scratch = std::make_unique<int>(3);
  (void)scratch;
}

}  // namespace fixture
