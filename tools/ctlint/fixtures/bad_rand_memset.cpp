// Fixture: banned libc randomness and optimizer-deletable wipes, with the
// suppression escape hatch exercised for both rules. Lint input only.
#include <cstdlib>
#include <cstring>

namespace fixture {

int weak_nonce() {
  std::srand(42);              // ctlint:expect(std-rand)
  return std::rand();          // ctlint:expect(std-rand)
}

long also_banned() {
  return random();             // ctlint:expect(std-rand)
}

void delete_my_wipe(unsigned char* key, unsigned long n) {
  // Dead-store elimination removes this the moment `key` is never read
  // again — exactly the bug secure_wipe's barrier prevents.
  std::memset(key, 0, n);      // ctlint:expect(raw-memset-wipe)
  bzero(key, n);               // ctlint:expect(raw-memset-wipe)
}

void suppressed_with_reason(unsigned char* scratch, unsigned long n) {
  // A justified allow with a reason silences the rule.
  // ctlint:allow(raw-memset-wipe) scratch holds public padding only
  std::memset(scratch, 0, n);
  std::memset(scratch, 0xFF, n);  // ctlint:allow(raw-memset-wipe) same line form, public buffer
}

int suppressed_rand() {
  // ctlint:allow(std-rand) seeding a toy shuffle in fixture-land
  return std::rand();
}

}  // namespace fixture
