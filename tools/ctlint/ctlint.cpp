// ctlint — secret-hygiene and concurrency lint for the NEUROPULS tree.
//
// A deliberately small static checker (no libclang): a line tokenizer
// with cross-line comment/string state plus a rule engine. It exists to
// turn the repo's constant-time / wipe / locking discipline into a build
// failure instead of a review comment. Registered as ctest cases: the
// source pass over `src/` (with `tools/ctlint/baseline.txt`), the
// self-test over `tools/ctlint/fixtures/`, and one per-pass self-test
// per concurrency fixture.
//
// Annotations (in comments):
//   // ctlint:secret              marks the variable declared on this line
//   // ctlint:secret(name)        ...or names it explicitly
//   // ctlint:allow(rule) reason  suppresses `rule` on this or next line;
//                                 the reason is mandatory
//   // ctlint:expect(rule)        fixture-only: self-test asserts `rule`
//                                 fires on this line
//
// Rules:
//   std-rand            libc randomness (rand/srand/random/...) anywhere;
//                       all randomness must come from the DRBGs
//   raw-memset-wipe     memset/bzero anywhere; wiping must go through
//                       crypto::secure_wipe (compiler barrier)
//   secret-compare      ==/!=/memcmp/std::equal touching a secret-marked
//                       identifier; use crypto::ct_equal
//   secret-index        array subscript indexed by a secret-marked
//                       identifier (cache-timing oracle)
//   missing-wipe        a secret-marked buffer whose enclosing scope never
//                       wipes it (secure_wipe(name) / name.wipe());
//                       SecretBytes-typed declarations are exempt (they
//                       wipe on destruction)
//
// Concurrency rules (keyed on the annotated wrappers in common/mutex.hpp
// — MutexLock/ShardLock/ReadLock/WriteLock declarations are acquisitions,
// `.unlock()`/`.lock()` toggle them, scope exit releases them; the
// analysis is lexical, per function — call-graph effects are TSan's job):
//   lock-order          builds the static acquisition graph (held lock ->
//                       newly acquired lock, nodes keyed by the mutex
//                       member name) across all linted files and fails on
//                       cycles; also fails on a ShardLock taken while an
//                       engine lock (sched_mutex / notify_mutex_ /
//                       admit_mutex) is held — shard locks are leaves of
//                       the documented order
//   blocking-under-lock park()/channel receive*()/operator new/make_*
//                       reachable while a scoped lock is live: blocking
//                       or allocator calls turn a short critical section
//                       into a convoy; likewise file I/O (write/pwrite/
//                       fwrite/write_all/fsync/fdatasync/flush) — a
//                       syscall, let alone a disk flush, under a lock
//                       stalls every thread behind it (the WAL group
//                       commit encodes under the shard lock and performs
//                       all I/O outside it)
//   atomic-misuse       a relaxed store/RMW paired with a non-relaxed
//                       load of the same atomic member in one file
//                       (inconsistent ordering is either a missing fence
//                       or an unneeded one), and raw `volatile` used for
//                       synchronization (asm-clobber lines are exempt)
//   admission-alloc     container-growth calls (push_back/emplace_back/
//                       resize/reserve/insert/emplace) while the
//                       admission controller's lock (admission_mutex_)
//                       is held — the admission fast path is the gate
//                       every flood hammers and must stay allocation-
//                       free (tables are preallocated in the
//                       constructor); growth calls allocate even though
//                       no `new`/make_* token appears at the call site
//   fleet-growth        push_back/emplace_back into a member container
//                       (`name_`) inside a per-device loop (a loop whose
//                       header mentions device/fleet vocabulary): a
//                       fleet-lifetime container growing once per device
//                       is O(fleet) memory and breaks the simulator's
//                       bounded-memory contract — accumulate into a
//                       bounded local staging buffer (flushed per chunk/
//                       wave) or a streaming estimator instead
//
// Exit codes: 0 clean, 1 violations/self-test failure, 2 usage error
// (including a missing lint root or an empty fixture/source set — the
// lint fails loudly rather than passing on nothing).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const std::set<std::string> kRuleNames = {
    "std-rand",       "raw-memset-wipe",     "secret-compare",
    "secret-index",   "missing-wipe",        "lock-order",
    "blocking-under-lock", "atomic-misuse",  "admission-alloc",
    "fleet-growth"};

const std::set<std::string> kBannedRandom = {
    "rand", "srand", "rand_r", "random", "srandom", "drand48", "lrand48"};

const std::set<std::string> kBannedWipe = {"memset", "bzero"};

struct Violation {
  std::string file;  // as given on the command line / relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  std::size_t col = 0;
};

// One source line after comment/string stripping, plus its annotations.
struct Line {
  std::string code;              // comments and string literals blanked
  std::string comment;           // concatenated comment text
  std::vector<Token> tokens;     // identifier and operator tokens
  int depth_before = 0;          // brace depth entering the line
  int depth_after = 0;           // brace depth leaving the line
};

struct Annotation {
  std::size_t line = 0;
  std::string rule;   // for allow/expect
  std::string name;   // for secret(name)
  bool has_reason = false;
};

struct ParsedFile {
  std::vector<Line> lines;                 // 0-based; line N is lines[N-1]
  std::vector<Annotation> secrets;
  std::vector<Annotation> allows;
  std::vector<Annotation> expects;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void tokenize(Line& line) {
  const std::string& s = line.code;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && ident_char(s[j])) ++j;
      line.tokens.push_back({s.substr(i, j - i), i});
      i = j;
    } else if (c == '=' && i + 1 < s.size() && s[i + 1] == '=') {
      line.tokens.push_back({"==", i});
      i += 2;
    } else if (c == '!' && i + 1 < s.size() && s[i + 1] == '=') {
      line.tokens.push_back({"!=", i});
      i += 2;
    } else if (c == '<' && i + 1 < s.size() && (s[i + 1] == '=')) {
      i += 2;  // <= is not interesting; skip so it can't split oddly
    } else if (c == '>' && i + 1 < s.size() && (s[i + 1] == '=')) {
      i += 2;
    } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      line.tokens.push_back({"::", i});
      i += 2;
    } else if (c == '[' || c == ']' || c == '(' || c == ')' || c == '.' ||
               c == ',' || c == ';' || c == '=' || c == '{' || c == '}') {
      line.tokens.push_back({std::string(1, c), i});
      ++i;
    } else {
      ++i;
    }
  }
}

// Pulls `ctlint:<kind>(...)` annotations out of a comment string.
void parse_annotations(const std::string& comment, std::size_t line_no,
                       ParsedFile& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("ctlint:", pos)) != std::string::npos) {
    std::size_t p = pos + 7;
    std::string kind;
    while (p < comment.size() && ident_char(comment[p])) kind += comment[p++];
    Annotation ann;
    ann.line = line_no;
    if (p < comment.size() && comment[p] == '(') {
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        ann.rule = comment.substr(p + 1, close - p - 1);
        p = close + 1;
      }
    }
    // Anything after the closing paren counts as the reason.
    std::size_t r = p;
    while (r < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[r]))) {
      ++r;
    }
    ann.has_reason = r < comment.size();
    if (kind == "secret") {
      ann.name = ann.rule;  // optional explicit variable name
      ann.rule.clear();
      out.secrets.push_back(ann);
    } else if (kind == "allow") {
      out.allows.push_back(ann);
    } else if (kind == "expect") {
      out.expects.push_back(ann);
    }
    pos = p;
  }
}

ParsedFile parse_file(const fs::path& path) {
  ParsedFile out;
  std::ifstream in(path);
  std::string raw;
  bool in_block_comment = false;
  int depth = 0;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    Line line;
    line.depth_before = depth;
    std::string code, comment;
    std::size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const std::size_t end = raw.find("*/", i);
        if (end == std::string::npos) {
          comment += raw.substr(i);
          i = raw.size();
        } else {
          comment += raw.substr(i, end - i);
          i = end + 2;
          in_block_comment = false;
        }
      } else if (raw.compare(i, 2, "//") == 0) {
        comment += raw.substr(i + 2);
        i = raw.size();
      } else if (raw.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
      } else if (raw[i] == '"' || raw[i] == '\'') {
        const char quote = raw[i];
        code += ' ';  // blank out the literal
        ++i;
        while (i < raw.size() && raw[i] != quote) {
          if (raw[i] == '\\') ++i;
          ++i;
        }
        if (i < raw.size()) ++i;
      } else {
        if (raw[i] == '{') ++depth;
        if (raw[i] == '}') --depth;
        code += raw[i];
        ++i;
      }
    }
    line.code = std::move(code);
    line.comment = std::move(comment);
    line.depth_after = depth;
    tokenize(line);
    parse_annotations(line.comment, line_no, out);
    out.lines.push_back(std::move(line));
  }
  return out;
}

// The declared-variable heuristic for an unnamed `// ctlint:secret`: the
// identifier directly before `=`, `(`, `{`, or `;` on the declaration line
// (skipping closing brackets), i.e. the declarator name.
std::string guess_declared_name(const Line& line) {
  const auto& t = line.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "=" || t[i].text == "(" || t[i].text == "{" ||
        t[i].text == ";") {
      for (std::size_t j = i; j-- > 0;) {
        const std::string& prev = t[j].text;
        if (prev == ")" || prev == "]") continue;
        if (std::isalpha(static_cast<unsigned char>(prev[0])) ||
            prev[0] == '_') {
          return prev;
        }
        break;
      }
    }
  }
  return {};
}

struct SecretDecl {
  std::string name;
  std::size_t line = 0;   // 1-based declaration line
  int depth = 0;          // brace depth of the declaration
  bool self_wiping = false;  // SecretBytes-typed: wipes on destruction
};

bool line_has_token(const Line& line, const std::string& token) {
  return std::any_of(line.tokens.begin(), line.tokens.end(),
                     [&](const Token& t) { return t.text == token; });
}

bool allowed(const ParsedFile& file, std::size_t line_no,
             const std::string& rule) {
  for (const auto& a : file.allows) {
    if (a.rule != rule || !a.has_reason) continue;
    if (a.line == line_no || a.line + 1 == line_no) return true;
  }
  return false;
}

void check_file(const std::string& display_path, const ParsedFile& file,
                std::vector<Violation>& out) {
  // Collect secret declarations first: every rule below keys on them.
  std::vector<SecretDecl> secrets;
  for (const auto& ann : file.secrets) {
    if (ann.line == 0 || ann.line > file.lines.size()) continue;
    const Line& decl_line = file.lines[ann.line - 1];
    SecretDecl decl;
    decl.line = ann.line;
    decl.depth = decl_line.depth_before;
    decl.name = !ann.name.empty() ? ann.name : guess_declared_name(decl_line);
    decl.self_wiping = line_has_token(decl_line, "SecretBytes");
    if (decl.name.empty()) {
      out.push_back({display_path, ann.line, "missing-wipe",
                     "ctlint:secret annotation names no variable (use "
                     "ctlint:secret(name))"});
      continue;
    }
    secrets.push_back(std::move(decl));
  }

  std::set<std::string> secret_names;
  for (const auto& s : secrets) secret_names.insert(s.name);

  // One finding per (line, rule): a line like `memcmp(a, b, n) == 0`
  // trips the same rule twice but is one defect.
  std::set<std::pair<std::size_t, std::string>> emitted;
  auto emit = [&](std::size_t line_no, const std::string& rule,
                  std::string message) {
    if (allowed(file, line_no, rule)) return;
    if (!emitted.insert({line_no, rule}).second) return;
    out.push_back({display_path, line_no, rule, std::move(message)});
  };

  for (std::size_t idx = 0; idx < file.lines.size(); ++idx) {
    const Line& line = file.lines[idx];
    const std::size_t line_no = idx + 1;
    const auto& toks = line.tokens;

    bool line_touches_secret = false;
    for (const auto& t : toks) {
      if (secret_names.count(t.text)) {
        line_touches_secret = true;
        break;
      }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;

      if (kBannedRandom.count(t)) {
        emit(line_no, "std-rand",
             "libc randomness '" + t +
                 "' is banned; use ChaChaDrbg/CtrDrbg");
      }
      if (kBannedWipe.count(t)) {
        emit(line_no, "raw-memset-wipe",
             "raw '" + t +
                 "' can be optimized out; use crypto::secure_wipe");
      }
      if (line_touches_secret) {
        if (t == "==" || t == "!=") {
          emit(line_no, "secret-compare",
               "'" + t +
                   "' on a secret-marked buffer leaks timing; use "
                   "crypto::ct_equal");
        }
        if (t == "memcmp") {
          emit(line_no, "secret-compare",
               "memcmp on a secret-marked buffer leaks timing; use "
               "crypto::ct_equal");
        }
        if (t == "equal" && i > 0 && toks[i - 1].text == "::") {
          emit(line_no, "secret-compare",
               "std::equal on a secret-marked buffer leaks timing; use "
               "crypto::ct_equal");
        }
      }
    }

    // secret-index: a '[' ... ']' span whose interior names a secret.
    int bracket = 0;
    bool flagged_index = false;
    for (const auto& t : toks) {
      if (t.text == "[") {
        ++bracket;
      } else if (t.text == "]") {
        if (bracket > 0) --bracket;
      } else if (bracket > 0 && !flagged_index &&
                 secret_names.count(t.text)) {
        emit(line_no, "secret-index",
             "array access indexed by secret '" + t.text +
                 "' is a cache-timing oracle");
        flagged_index = true;
      }
    }
  }

  // missing-wipe: from each non-self-wiping declaration to the end of its
  // enclosing scope there must be a `secure_wipe(...name...)` call or a
  // `name.wipe()` call.
  for (const auto& decl : secrets) {
    if (decl.self_wiping) continue;
    bool wiped = false;
    for (std::size_t idx = decl.line - 1; idx < file.lines.size(); ++idx) {
      const Line& line = file.lines[idx];
      if (idx >= decl.line && line.depth_after < decl.depth) break;
      const auto& toks = line.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text == "secure_wipe") {
          // secure_wipe(... name ...) up to the closing paren.
          int paren = 0;
          for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (toks[j].text == "(") ++paren;
            else if (toks[j].text == ")") {
              if (--paren <= 0) break;
            } else if (toks[j].text == decl.name) {
              wiped = true;
            }
          }
        } else if (toks[i].text == decl.name && i + 2 < toks.size() &&
                   toks[i + 1].text == "." && toks[i + 2].text == "wipe") {
          wiped = true;
        }
      }
      if (wiped) break;
    }
    if (!wiped && !allowed(file, decl.line, "missing-wipe")) {
      out.push_back({display_path, decl.line, "missing-wipe",
                     "secret '" + decl.name +
                         "' is never wiped in its scope; call "
                         "crypto::secure_wipe or use SecretBytes"});
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency passes.
//
// All three key on the annotated wrapper types from common/mutex.hpp. A
// declaration `MutexLock name(arg...)` (likewise ShardLock / ReadLock /
// WriteLock) is an acquisition; the lock's graph node is the last
// identifier of the first constructor argument (`mutex_`, `loop->m` ->
// `m`, `shard.mutex` -> `mutex`), i.e. the mutex member name — the same
// vocabulary the lock-order comment in common/mutex.hpp uses. Tracking
// is lexical and brace-scoped, exactly like the missing-wipe scan: the
// lock dies when the brace depth drops below its declaration depth, and
// `name.unlock()` / `name.lock()` toggle it in between.

const std::set<std::string> kScopedLockTypes = {"MutexLock", "ShardLock",
                                                "ReadLock", "WriteLock"};

// Session-runtime locks that must never be held when entering the CRP
// store: shard locks are leaves of the documented order.
const std::set<std::string> kEngineLockNames = {"sched_mutex", "notify_mutex_",
                                                "admit_mutex"};

// Calls that can block (parking, channel receives) or take the global
// allocator lock (operator new and the std::make_* wrappers).
const std::set<std::string> kBlockingCalls = {"park", "receive",
                                              "receive_with_budget"};
const std::set<std::string> kAllocCalls = {"make_unique", "make_shared"};

// The admission controller's lock guards the flood-facing fast path:
// under it even *indirect* allocation is banned, so container-growth
// calls (which may reallocate without any `new` at the call site) are
// flagged too. Every table the fast path touches is preallocated in the
// AdmissionController constructor.
const std::set<std::string> kAdmissionLockNames = {"admission_mutex_"};
const std::set<std::string> kGrowthCalls = {"push_back", "emplace_back",
                                            "resize",    "reserve",
                                            "insert",    "emplace"};

// File-I/O calls that hit the kernel — and, for the fsync family, wait
// on the disk — which must never run inside a critical section. The
// durable CRP store's group-commit protocol depends on this split:
// records are *encoded* under the shard lock (memory-only), the buffer
// is swapped out, and every write/fsync happens with no lock held
// (common/io.hpp is where the sanctioned call sites live).
const std::set<std::string> kFileIoCalls = {
    "write", "pwrite", "fwrite", "write_all", "fsync", "fdatasync", "flush"};

const std::set<std::string> kAtomicWriteOps = {
    "store", "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "exchange"};

// The static acquisition graph, accumulated across every linted file:
// (held-lock node -> acquired-lock node) with the first site that
// recorded the edge. Cycle detection runs once after all files parse.
struct LockGraph {
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, std::size_t>>
      edges;
};

bool is_ident(const std::string& t) {
  return !t.empty() &&
         (std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_');
}

// A file's tokens flattened into one stream (call syntax regularly spans
// lines), each tagged with its 0-based source line index.
struct FlatToken {
  const std::string* text;
  std::size_t line_idx;
};

void check_concurrency(const std::string& display_path, const ParsedFile& file,
                       LockGraph& graph, std::vector<Violation>& out) {
  std::set<std::pair<std::size_t, std::string>> emitted;
  auto emit = [&](std::size_t line_no, const std::string& rule,
                  std::string message) {
    if (allowed(file, line_no, rule)) return;
    if (!emitted.insert({line_no, rule}).second) return;
    out.push_back({display_path, line_no, rule, std::move(message)});
  };

  std::vector<FlatToken> ft;
  for (std::size_t idx = 0; idx < file.lines.size(); ++idx) {
    for (const auto& tok : file.lines[idx].tokens) {
      ft.push_back({&tok.text, idx});
    }
  }

  struct LiveLock {
    std::string var;   // the scoped-lock variable name
    std::string key;   // graph node: the guarded mutex's member name
    bool shard = false;
    int depth = 0;     // brace depth of the declaration line
    bool held = true;  // false between .unlock() and .lock()
  };
  std::vector<LiveLock> locks;

  // atomic-misuse bookkeeping: file-wide pairing by member name.
  std::map<std::string, std::size_t> relaxed_writes;  // member -> first line
  std::vector<std::pair<std::string, std::size_t>> strong_loads;

  std::size_t cur_line = 0;  // 0-based index of the line being processed
  auto close_lines_through = [&](std::size_t target_idx) {
    while (cur_line < target_idx) {
      const int depth_after = file.lines[cur_line].depth_after;
      locks.erase(std::remove_if(locks.begin(), locks.end(),
                                 [&](const LiveLock& l) {
                                   return l.depth > depth_after;
                                 }),
                  locks.end());
      ++cur_line;
    }
  };

  for (std::size_t k = 0; k < ft.size(); ++k) {
    close_lines_through(ft[k].line_idx);
    const std::string& t = *ft[k].text;
    const std::size_t line_no = ft[k].line_idx + 1;

    // Scoped-lock declaration: `<LockType> name(first_arg...)`.
    if (kScopedLockTypes.count(t) && k + 2 < ft.size() &&
        is_ident(*ft[k + 1].text) && *ft[k + 2].text == "(") {
      std::string key;
      int paren = 1;
      for (std::size_t m = k + 3; m < ft.size() && paren > 0; ++m) {
        const std::string& a = *ft[m].text;
        if (a == "(") {
          ++paren;
        } else if (a == ")") {
          --paren;
        } else if (a == "," && paren == 1) {
          break;  // key comes from the first constructor argument only
        } else if (paren == 1 && is_ident(a) && a != "std") {
          key = a;
        }
      }
      if (!key.empty()) {
        const bool shard = t == "ShardLock";
        for (const auto& held : locks) {
          if (!held.held) continue;
          if (shard && kEngineLockNames.count(held.key)) {
            emit(line_no, "lock-order",
                 "shard lock acquired while engine lock '" + held.key +
                     "' is held; shard locks are leaves of the lock order");
          }
          if (!allowed(file, line_no, "lock-order")) {
            graph.edges.emplace(std::make_pair(held.key, key),
                                std::make_pair(display_path, line_no));
          }
        }
        locks.push_back({*ft[k + 1].text, key, shard,
                         file.lines[ft[k].line_idx].depth_before, true});
      }
    }

    // `name.unlock()` / `name.lock()` on a live scoped lock.
    if (is_ident(t) && k + 3 < ft.size() && *ft[k + 1].text == "." &&
        *ft[k + 3].text == "(" &&
        (*ft[k + 2].text == "unlock" || *ft[k + 2].text == "lock")) {
      for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
        if (it->var == t) {
          it->held = *ft[k + 2].text == "lock";
          break;
        }
      }
    }

    // blocking-under-lock: while any scoped lock is held.
    const LiveLock* held = nullptr;
    for (const auto& l : locks) {
      if (l.held) {
        held = &l;
        break;
      }
    }
    if (held != nullptr) {
      if (kBlockingCalls.count(t) && k + 1 < ft.size() &&
          *ft[k + 1].text == "(") {
        emit(line_no, "blocking-under-lock",
             "'" + t + "' can block while lock '" + held->key +
                 "' is held; release the lock first");
      } else if (kFileIoCalls.count(t) && k + 1 < ft.size() &&
                 *ft[k + 1].text == "(") {
        emit(line_no, "blocking-under-lock",
             "file I/O ('" + t + "') while lock '" + held->key +
                 "' is held; encode into a buffer under the lock and do "
                 "the write/fsync after releasing it");
      } else if (t == "new" || kAllocCalls.count(t)) {
        emit(line_no, "blocking-under-lock",
             "allocation ('" + t + "') while lock '" + held->key +
                 "' is held; the allocator can contend or page-fault");
      }
    }

    // admission-alloc: container growth with the admission lock live.
    // Checked against every held lock (not just the innermost) — the
    // admission mutex is a leaf, but a nested section must not launder
    // the growth call past the rule.
    if (kGrowthCalls.count(t) && k + 1 < ft.size() && *ft[k + 1].text == "(") {
      for (const auto& l : locks) {
        if (l.held && kAdmissionLockNames.count(l.key)) {
          emit(line_no, "admission-alloc",
               "container growth ('" + t + "') while admission lock '" +
                   l.key + "' is held; the admission fast path must stay "
                           "allocation-free — preallocate in the constructor");
          break;
        }
      }
    }

    // atomic-misuse, part 1: classify `.op(...)` atomic accesses.
    if ((t == "load" || kAtomicWriteOps.count(t)) && k >= 2 &&
        *ft[k - 1].text == "." && is_ident(*ft[k - 2].text) &&
        k + 1 < ft.size() && *ft[k + 1].text == "(") {
      const std::string& member = *ft[k - 2].text;
      bool relaxed = false;
      int paren = 1;
      for (std::size_t m = k + 2; m < ft.size() && paren > 0; ++m) {
        const std::string& a = *ft[m].text;
        if (a == "(") {
          ++paren;
        } else if (a == ")") {
          --paren;
        } else if (a == "memory_order_relaxed") {
          relaxed = true;
        }
      }
      if (t == "load") {
        if (!relaxed) strong_loads.push_back({member, line_no});
      } else if (relaxed) {
        relaxed_writes.emplace(member, line_no);
      }
    }

    // atomic-misuse, part 2: raw volatile (asm clobber lines exempt).
    if (t == "volatile" && (k == 0 || *ft[k - 1].text != "asm")) {
      emit(line_no, "atomic-misuse",
           "raw 'volatile' is not inter-thread synchronization; use "
           "std::atomic (sanctioned wipe barriers need ctlint:allow)");
    }
  }

  // atomic-misuse, part 3: pair relaxed writes with non-relaxed loads.
  for (const auto& [member, load_line] : strong_loads) {
    const auto w = relaxed_writes.find(member);
    if (w == relaxed_writes.end()) continue;
    emit(load_line, "atomic-misuse",
         "non-relaxed load of '" + member + "' pairs with a relaxed " +
             "store/RMW (line " + std::to_string(w->second) +
             "); pick one ordering for the member");
  }
}

// ---------------------------------------------------------------------------
// fleet-growth: per-device accumulation into fleet-lifetime containers.
//
// The fleet simulator's memory contract is O(chunk)+O(wave), never
// O(fleet): anything appended once per device into a container that
// outlives the loop accumulates a million entries. The lexical proxy:
// a growth call whose receiver is a member (trailing-underscore name,
// the repo's member convention) inside a loop whose header speaks the
// device vocabulary. Locals (no trailing underscore) are the sanctioned
// staging idiom — bounded by the chunk/wave the loop iterates.

const std::set<std::string> kFleetGrowthCalls = {"push_back", "emplace_back"};

bool device_vocabulary(const std::string& ident) {
  return ident == "dev" || ident == "fleet" ||
         ident.find("device") != std::string::npos;
}

bool member_name(const std::string& ident) {
  return ident.size() >= 2 && ident.back() == '_';
}

void check_fleet_growth(const std::string& display_path,
                        const ParsedFile& file, std::vector<Violation>& out) {
  std::set<std::pair<std::size_t, std::string>> emitted;
  auto emit = [&](std::size_t line_no, std::string message) {
    if (allowed(file, line_no, "fleet-growth")) return;
    if (!emitted.insert({line_no, "fleet-growth"}).second) return;
    out.push_back({display_path, line_no, "fleet-growth", std::move(message)});
  };

  std::vector<FlatToken> ft;
  for (std::size_t idx = 0; idx < file.lines.size(); ++idx) {
    for (const auto& tok : file.lines[idx].tokens) {
      ft.push_back({&tok.text, idx});
    }
  }

  // Brace depths at which a device-vocabulary loop was opened; a loop
  // dies when the depth drops back to its declaration depth (the same
  // lexical scoping the lock tracker uses). Braceless loop bodies are
  // out of scope for this heuristic — the repo style always braces.
  std::vector<int> device_loops;
  std::size_t cur_line = 0;
  auto close_lines_through = [&](std::size_t target_idx) {
    while (cur_line < target_idx) {
      const int depth_after = file.lines[cur_line].depth_after;
      while (!device_loops.empty() && device_loops.back() >= depth_after) {
        device_loops.pop_back();
      }
      ++cur_line;
    }
  };

  for (std::size_t k = 0; k < ft.size(); ++k) {
    close_lines_through(ft[k].line_idx);
    const std::string& t = *ft[k].text;
    const std::size_t line_no = ft[k].line_idx + 1;

    // Loop header scan: `for (...)` / `while (...)` naming a device.
    if ((t == "for" || t == "while") && k + 1 < ft.size() &&
        *ft[k + 1].text == "(") {
      bool device_loop = false;
      int paren = 1;
      for (std::size_t m = k + 2; m < ft.size() && paren > 0; ++m) {
        const std::string& a = *ft[m].text;
        if (a == "(") {
          ++paren;
        } else if (a == ")") {
          --paren;
        } else if (is_ident(a) && device_vocabulary(a)) {
          device_loop = true;
        }
      }
      if (device_loop) {
        device_loops.push_back(file.lines[ft[k].line_idx].depth_before);
      }
      continue;
    }

    if (device_loops.empty()) continue;
    if (!kFleetGrowthCalls.count(t) || k + 1 >= ft.size() ||
        *ft[k + 1].text != "(") {
      continue;
    }
    // Receiver: `member_.push_back(` (the tokenizer drops `->`, so a
    // pointer receiver appears as the identifier directly before the
    // call token).
    std::string receiver;
    if (k >= 2 && *ft[k - 1].text == "." && is_ident(*ft[k - 2].text)) {
      receiver = *ft[k - 2].text;
    } else if (k >= 1 && is_ident(*ft[k - 1].text)) {
      receiver = *ft[k - 1].text;
    }
    if (member_name(receiver)) {
      emit(line_no,
           "'" + receiver + "." + t + "' grows a fleet-lifetime container "
           "inside a per-device loop — O(fleet) memory; stage into a "
           "bounded local flushed per chunk/wave, or use a streaming "
           "estimator (metrics/streaming.hpp)");
    }
  }
}

// Cycle detection over the accumulated acquisition graph: edge A->B is a
// violation when B (transitively) reaches back to A — including the
// self-edge A->A, a lexically visible double-acquire.
void finalize_lock_order(const LockGraph& graph,
                         std::vector<Violation>& out) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, site] : graph.edges) {
    adj[edge.first].push_back(edge.second);
  }
  auto reaches = [&](const std::string& from, const std::string& target) {
    std::vector<std::string> stack{from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string node = stack.back();
      stack.pop_back();
      if (!seen.insert(node).second) continue;
      if (node == target) return true;
      const auto it = adj.find(node);
      if (it == adj.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
    return false;
  };
  for (const auto& [edge, site] : graph.edges) {
    if (!reaches(edge.second, edge.first)) continue;
    out.push_back(
        {site.first, site.second, "lock-order",
         "lock-order cycle: '" + edge.first + "' -> '" + edge.second +
             "' here, but '" + edge.second +
             "' is (transitively) acquired before '" + edge.first +
             "' elsewhere; pick one order and document it in "
             "common/mutex.hpp"});
  }
}

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

// `missing` counts roots that do not exist at all — callers fail loudly
// on those instead of silently linting nothing (a typo'd path must not
// read as a clean run).
std::vector<fs::path> collect_sources(const std::vector<std::string>& roots,
                                      std::size_t& missing) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      if (is_source_file(p)) files.push_back(p);
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && is_source_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::fprintf(stderr, "ctlint: no such path: %s\n", root.c_str());
      ++missing;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Baseline format: `<path-suffix>:<rule>:<count>` per line; '#' comments.
// A violation is tolerated when its file path ends with the suffix and the
// per-entry budget is not yet exhausted.
std::map<std::pair<std::string, std::string>, int> load_baseline(
    const std::string& path) {
  std::map<std::pair<std::string, std::string>, int> budget;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ctlint: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    if (line.empty()) continue;
    const std::size_t c2 = line.rfind(':');
    const std::size_t c1 = line.rfind(':', c2 == 0 ? 0 : c2 - 1);
    if (c1 == std::string::npos || c2 == std::string::npos || c1 == c2) {
      std::fprintf(stderr, "ctlint: malformed baseline entry: %s\n",
                   line.c_str());
      std::exit(2);
    }
    budget[{line.substr(0, c1), line.substr(c1 + 1, c2 - c1 - 1)}] =
        std::stoi(line.substr(c2 + 1));
  }
  return budget;
}

int run_lint(const std::vector<std::string>& roots,
             const std::string& baseline_path, bool json) {
  auto budget = baseline_path.empty()
                    ? std::map<std::pair<std::string, std::string>, int>{}
                    : load_baseline(baseline_path);
  std::vector<Violation> violations;
  std::size_t missing = 0;
  const auto files = collect_sources(roots, missing);
  if (missing > 0) {
    std::fprintf(stderr, "ctlint: %zu lint root(s) missing; refusing to "
                         "report a clean run\n",
                 missing);
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "ctlint: no source files under the given paths; refusing "
                 "to report a clean run\n");
    return 2;
  }
  LockGraph graph;
  for (const auto& file : files) {
    const ParsedFile parsed = parse_file(file);
    check_file(file.generic_string(), parsed, violations);
    check_concurrency(file.generic_string(), parsed, graph, violations);
    check_fleet_growth(file.generic_string(), parsed, violations);
  }
  finalize_lock_order(graph, violations);

  std::vector<Violation> reported;
  for (const auto& v : violations) {
    bool baselined = false;
    for (auto& [key, remaining] : budget) {
      if (remaining > 0 && v.rule == key.second &&
          v.file.size() >= key.first.size() &&
          v.file.compare(v.file.size() - key.first.size(), key.first.size(),
                         key.first) == 0) {
        --remaining;
        baselined = true;
        break;
      }
    }
    if (!baselined) reported.push_back(v);
  }

  if (json) {
    // Machine-readable findings on stdout, human summary on stderr.
    std::printf("[");
    for (std::size_t i = 0; i < reported.size(); ++i) {
      const auto& v = reported[i];
      std::printf("%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                  "\"message\": \"%s\"}",
                  i == 0 ? "" : ",", json_escape(v.file).c_str(), v.line,
                  v.rule.c_str(), json_escape(v.message).c_str());
    }
    std::printf("%s]\n", reported.empty() ? "" : "\n");
    std::fprintf(stderr, "ctlint: %zu file(s), %zu violation(s)%s\n",
                 files.size(), reported.size(),
                 violations.size() != reported.size() ? " (after baseline)"
                                                      : "");
  } else {
    for (const auto& v : reported) {
      std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str());
    }
    std::printf("ctlint: %zu file(s), %zu violation(s)%s\n", files.size(),
                reported.size(),
                violations.size() != reported.size() ? " (after baseline)"
                                                     : "");
  }
  return reported.empty() ? 0 : 1;
}

// Self-test: every `ctlint:expect(rule)` line must yield exactly that
// violation, and no unexpected violations may appear. This proves each
// rule both fires on bad code and respects suppressions.
int run_self_test(const std::string& fixture_dir) {
  std::size_t missing = 0;
  const auto files = collect_sources({fixture_dir}, missing);
  if (missing > 0 || files.empty()) {
    std::fprintf(stderr, "ctlint: no fixtures under %s\n",
                 fixture_dir.c_str());
    return 2;
  }
  int failures = 0;
  std::size_t checked = 0;
  for (const auto& file : files) {
    const ParsedFile parsed = parse_file(file);
    std::vector<Violation> violations;
    check_file(file.generic_string(), parsed, violations);
    // Concurrency passes run with a per-fixture graph, so each fixture
    // is a self-contained lock-order scenario.
    LockGraph graph;
    check_concurrency(file.generic_string(), parsed, graph, violations);
    finalize_lock_order(graph, violations);
    check_fleet_growth(file.generic_string(), parsed, violations);

    // A fixture that expects nothing tests nothing: a renamed rule or a
    // mangled annotation must fail here, not silently pass.
    if (parsed.expects.empty()) {
      std::printf("FAIL %s: fixture declares no ctlint:expect annotations\n",
                  file.generic_string().c_str());
      ++failures;
    }

    std::multiset<std::pair<std::size_t, std::string>> expected, actual;
    for (const auto& e : parsed.expects) {
      if (!kRuleNames.count(e.rule)) {
        std::printf("FAIL %s:%zu unknown rule in expect: %s\n",
                    file.generic_string().c_str(), e.line, e.rule.c_str());
        ++failures;
        continue;
      }
      expected.insert({e.line, e.rule});
    }
    for (const auto& v : violations) actual.insert({v.line, v.rule});
    checked += expected.size();

    for (const auto& e : expected) {
      if (!actual.count(e)) {
        std::printf("FAIL %s:%zu expected [%s] did not fire\n",
                    file.generic_string().c_str(), e.first, e.second.c_str());
        ++failures;
      }
    }
    for (const auto& a : actual) {
      if (!expected.count(a)) {
        std::printf("FAIL %s:%zu unexpected [%s]\n",
                    file.generic_string().c_str(), a.first, a.second.c_str());
        ++failures;
      }
    }
  }
  std::printf("ctlint self-test: %zu fixture file(s), %zu expectation(s), "
              "%d failure(s)\n",
              files.size(), checked, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline;
  std::string self_test_dir;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : kRuleNames) std::printf("%s\n", r.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ctlint [--baseline FILE] [--json] "
                  "[--self-test DIR-OR-FILE] PATH...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ctlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (!self_test_dir.empty()) return run_self_test(self_test_dir);
  if (roots.empty()) {
    std::fprintf(stderr, "ctlint: no paths given (try --help)\n");
    return 2;
  }
  return run_lint(roots, baseline, json);
}
