// Wire-format and adversarial-channel tests.
#include <gtest/gtest.h>

#include "net/channel.hpp"

namespace neuropuls::net {
namespace {

TEST(MessageCodec, RoundTrip) {
  const Message m{MessageType::kAuthResponse, 0x1122334455667788ULL,
                  crypto::bytes_of("payload")};
  const auto wire = encode_message(m);
  EXPECT_EQ(decode_message(wire), m);
}

TEST(MessageCodec, EmptyPayload) {
  const Message m{MessageType::kAuthRequest, 7, {}};
  EXPECT_EQ(decode_message(encode_message(m)), m);
}

TEST(MessageCodec, RejectsTruncation) {
  const auto wire = encode_message({MessageType::kData, 1, crypto::Bytes(10, 0)});
  EXPECT_THROW(decode_message(crypto::ByteView(wire).first(12)),
               std::runtime_error);
  EXPECT_THROW(decode_message(crypto::ByteView(wire).first(wire.size() - 1)),
               std::runtime_error);
}

TEST(MessageCodec, RejectsLengthMismatch) {
  auto wire = encode_message({MessageType::kData, 1, crypto::Bytes(4, 0)});
  wire.push_back(0x00);  // trailing garbage
  EXPECT_THROW(decode_message(wire), std::runtime_error);
}

TEST(MessageCodec, TypeNamesCoverEnum) {
  EXPECT_EQ(message_type_name(MessageType::kAuthRequest), "auth-request");
  EXPECT_EQ(message_type_name(MessageType::kError), "error");
  EXPECT_EQ(message_type_name(static_cast<MessageType>(99)), "unknown");
}

TEST(Channel, DeliversInOrder) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {0x01}});
  channel.send(Direction::kAtoB, {MessageType::kData, 2, {0x02}});
  EXPECT_EQ(channel.pending(Direction::kAtoB), 2u);
  EXPECT_EQ(channel.receive(Direction::kAtoB)->session_id, 1u);
  EXPECT_EQ(channel.receive(Direction::kAtoB)->session_id, 2u);
  EXPECT_FALSE(channel.receive(Direction::kAtoB).has_value());
}

TEST(Channel, DirectionsAreIndependent) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {}});
  EXPECT_FALSE(channel.receive(Direction::kBtoA).has_value());
  EXPECT_TRUE(channel.receive(Direction::kAtoB).has_value());
}

TEST(Channel, AdversaryCanDrop) {
  DuplexChannel channel;
  channel.set_adversary([](Direction, const Message&) {
    return Verdict::drop();
  });
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {}});
  EXPECT_FALSE(channel.receive(Direction::kAtoB).has_value());
  ASSERT_EQ(channel.transcript().size(), 1u);
  EXPECT_FALSE(channel.transcript()[0].delivered);
}

TEST(Channel, AdversaryCanReplace) {
  DuplexChannel channel;
  channel.set_adversary([](Direction, const Message& m) {
    Message forged = m;
    forged.payload = crypto::bytes_of("forged");
    return Verdict::replace(forged);
  });
  channel.send(Direction::kAtoB, {MessageType::kData, 1, crypto::bytes_of("real")});
  const auto received = channel.receive(Direction::kAtoB);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, crypto::bytes_of("forged"));
}

TEST(Channel, InjectBypassesAdversary) {
  DuplexChannel channel;
  int intercepted = 0;
  channel.set_adversary([&](Direction, const Message&) {
    ++intercepted;
    return Verdict::pass();
  });
  channel.inject(Direction::kBtoA, {MessageType::kData, 9, {}});
  EXPECT_EQ(intercepted, 0);
  EXPECT_TRUE(channel.receive(Direction::kBtoA).has_value());
}

TEST(Channel, TranscriptRecordsEverything) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kAuthRequest, 1, {}});
  channel.send(Direction::kBtoA, {MessageType::kAuthResponse, 1, {}});
  ASSERT_EQ(channel.transcript().size(), 2u);
  EXPECT_EQ(channel.transcript()[0].direction, Direction::kAtoB);
  EXPECT_EQ(channel.transcript()[1].direction, Direction::kBtoA);
}

TEST(ChannelLimits, FullInboxDropsWithStatInsteadOfGrowing) {
  ChannelLimits limits;
  limits.max_inbox_frames = 2;
  DuplexChannel channel(limits);
  for (std::uint64_t i = 0; i < 5; ++i) {
    channel.send(Direction::kAtoB, {MessageType::kData, i, {}});
  }
  EXPECT_EQ(channel.pending(Direction::kAtoB), 2u);
  EXPECT_EQ(channel.shed_stats(Direction::kAtoB).dropped_overflow, 3u);
  // The shed frames are still visible in the transcript, as undelivered.
  ASSERT_EQ(channel.transcript().size(), 5u);
  EXPECT_TRUE(channel.transcript()[1].delivered);
  EXPECT_FALSE(channel.transcript()[4].delivered);
  // Draining the inbox re-opens capacity for new traffic.
  ASSERT_TRUE(channel.receive(Direction::kAtoB).has_value());
  channel.send(Direction::kAtoB, {MessageType::kData, 9, {}});
  EXPECT_EQ(channel.pending(Direction::kAtoB), 2u);
  EXPECT_EQ(channel.shed_stats(Direction::kAtoB).dropped_overflow, 3u);
}

TEST(ChannelLimits, OversizedFrameNeverEnqueues) {
  ChannelLimits limits;
  limits.max_frame_bytes = 16;
  DuplexChannel channel(limits);
  channel.send(Direction::kBtoA, {MessageType::kData, 1, crypto::Bytes(17, 0xFF)});
  EXPECT_FALSE(channel.readable(Direction::kBtoA));
  EXPECT_EQ(channel.shed_stats(Direction::kBtoA).dropped_oversized, 1u);
  channel.send(Direction::kBtoA, {MessageType::kData, 2, crypto::Bytes(16, 0x01)});
  EXPECT_TRUE(channel.readable(Direction::kBtoA));
}

TEST(ChannelLimits, ShedFramesFireNoWakeup) {
  ChannelLimits limits;
  limits.max_inbox_frames = 1;
  limits.max_frame_bytes = 8;
  DuplexChannel channel(limits);
  int wakeups = 0;
  channel.set_wakeup_hook([&](Direction) { ++wakeups; });
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {}});       // lands
  channel.send(Direction::kAtoB, {MessageType::kData, 2, {}});       // overflow
  channel.inject(Direction::kAtoB, {MessageType::kData, 3, {}});     // overflow
  channel.send(Direction::kBtoA, {MessageType::kData, 4, crypto::Bytes(9, 0)});
  EXPECT_EQ(wakeups, 1);  // a parked receiver must not wake for shed frames
  channel.set_wakeup_hook(nullptr);
}

TEST(ChannelLimits, TranscriptCapCountsInsteadOfStoring) {
  ChannelLimits limits;
  limits.max_transcript_frames = 3;
  DuplexChannel channel(limits);
  for (std::uint64_t i = 0; i < 6; ++i) {
    channel.send(Direction::kAtoB, {MessageType::kData, i, {}});
  }
  EXPECT_EQ(channel.transcript().size(), 3u);
  EXPECT_EQ(channel.shed_stats(Direction::kAtoB).transcript_truncated, 3u);
  // Delivery is unaffected: all six frames are still readable.
  EXPECT_EQ(channel.pending(Direction::kAtoB), 6u);
}

TEST(ChannelLimits, DefaultsAreUnbounded) {
  DuplexChannel channel;
  for (std::uint64_t i = 0; i < 100; ++i) {
    channel.send(Direction::kAtoB, {MessageType::kData, i, crypto::Bytes(64, 1)});
  }
  EXPECT_EQ(channel.pending(Direction::kAtoB), 100u);
  EXPECT_EQ(channel.shed_stats(Direction::kAtoB).dropped_overflow, 0u);
  EXPECT_EQ(channel.shed_stats(Direction::kAtoB).dropped_oversized, 0u);
}

}  // namespace
}  // namespace neuropuls::net
