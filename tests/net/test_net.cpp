// Wire-format and adversarial-channel tests.
#include <gtest/gtest.h>

#include "net/channel.hpp"

namespace neuropuls::net {
namespace {

TEST(MessageCodec, RoundTrip) {
  const Message m{MessageType::kAuthResponse, 0x1122334455667788ULL,
                  crypto::bytes_of("payload")};
  const auto wire = encode_message(m);
  EXPECT_EQ(decode_message(wire), m);
}

TEST(MessageCodec, EmptyPayload) {
  const Message m{MessageType::kAuthRequest, 7, {}};
  EXPECT_EQ(decode_message(encode_message(m)), m);
}

TEST(MessageCodec, RejectsTruncation) {
  const auto wire = encode_message({MessageType::kData, 1, crypto::Bytes(10, 0)});
  EXPECT_THROW(decode_message(crypto::ByteView(wire).first(12)),
               std::runtime_error);
  EXPECT_THROW(decode_message(crypto::ByteView(wire).first(wire.size() - 1)),
               std::runtime_error);
}

TEST(MessageCodec, RejectsLengthMismatch) {
  auto wire = encode_message({MessageType::kData, 1, crypto::Bytes(4, 0)});
  wire.push_back(0x00);  // trailing garbage
  EXPECT_THROW(decode_message(wire), std::runtime_error);
}

TEST(MessageCodec, TypeNamesCoverEnum) {
  EXPECT_EQ(message_type_name(MessageType::kAuthRequest), "auth-request");
  EXPECT_EQ(message_type_name(MessageType::kError), "error");
  EXPECT_EQ(message_type_name(static_cast<MessageType>(99)), "unknown");
}

TEST(Channel, DeliversInOrder) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {0x01}});
  channel.send(Direction::kAtoB, {MessageType::kData, 2, {0x02}});
  EXPECT_EQ(channel.pending(Direction::kAtoB), 2u);
  EXPECT_EQ(channel.receive(Direction::kAtoB)->session_id, 1u);
  EXPECT_EQ(channel.receive(Direction::kAtoB)->session_id, 2u);
  EXPECT_FALSE(channel.receive(Direction::kAtoB).has_value());
}

TEST(Channel, DirectionsAreIndependent) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {}});
  EXPECT_FALSE(channel.receive(Direction::kBtoA).has_value());
  EXPECT_TRUE(channel.receive(Direction::kAtoB).has_value());
}

TEST(Channel, AdversaryCanDrop) {
  DuplexChannel channel;
  channel.set_adversary([](Direction, const Message&) {
    return Verdict::drop();
  });
  channel.send(Direction::kAtoB, {MessageType::kData, 1, {}});
  EXPECT_FALSE(channel.receive(Direction::kAtoB).has_value());
  ASSERT_EQ(channel.transcript().size(), 1u);
  EXPECT_FALSE(channel.transcript()[0].delivered);
}

TEST(Channel, AdversaryCanReplace) {
  DuplexChannel channel;
  channel.set_adversary([](Direction, const Message& m) {
    Message forged = m;
    forged.payload = crypto::bytes_of("forged");
    return Verdict::replace(forged);
  });
  channel.send(Direction::kAtoB, {MessageType::kData, 1, crypto::bytes_of("real")});
  const auto received = channel.receive(Direction::kAtoB);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, crypto::bytes_of("forged"));
}

TEST(Channel, InjectBypassesAdversary) {
  DuplexChannel channel;
  int intercepted = 0;
  channel.set_adversary([&](Direction, const Message&) {
    ++intercepted;
    return Verdict::pass();
  });
  channel.inject(Direction::kBtoA, {MessageType::kData, 9, {}});
  EXPECT_EQ(intercepted, 0);
  EXPECT_TRUE(channel.receive(Direction::kBtoA).has_value());
}

TEST(Channel, TranscriptRecordsEverything) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, {MessageType::kAuthRequest, 1, {}});
  channel.send(Direction::kBtoA, {MessageType::kAuthResponse, 1, {}});
  ASSERT_EQ(channel.transcript().size(), 2u);
  EXPECT_EQ(channel.transcript()[0].direction, Direction::kAtoB);
  EXPECT_EQ(channel.transcript()[1].direction, Direction::kBtoA);
}

}  // namespace
}  // namespace neuropuls::net
