// CPA-against-AES tests (§IV power side channels) and device-aging tests
// (§V "effects of aging").
#include <gtest/gtest.h>

#include "attacks/cpa.hpp"
#include "puf/ro_puf.hpp"
#include "puf/sram_puf.hpp"

namespace neuropuls::attacks {
namespace {

const crypto::Bytes kKey = crypto::from_hex("2b7e151628aed2a6abf7158809cf4f3c");

TEST(Cpa, RecoversKeyAtStrongLeakage) {
  const CpaLeakageModel exposed{1.0, 2.0};
  const auto traces = acquire_traces(kKey, 800, exposed, 1);
  const auto result = cpa_attack(traces, kKey);
  EXPECT_EQ(result.correct_bytes, 16u);
  EXPECT_EQ(result.recovered_key, kKey);
  EXPECT_GT(result.mean_best_correlation, 0.5);
}

TEST(Cpa, FailsAtAttenuatedLeakage) {
  // 40 dB power attenuation on the leakage term (the shielded crypto
  // engine behind the hardware boundary).
  const CpaLeakageModel shielded{0.01, 2.0};
  const auto traces = acquire_traces(kKey, 800, shielded, 1);
  const auto result = cpa_attack(traces, kKey);
  EXPECT_LT(result.correct_bytes, 4u);  // at most chance-level hits
}

TEST(Cpa, MoreTracesHelp) {
  const CpaLeakageModel weak{0.25, 2.0};
  const auto few = cpa_attack(acquire_traces(kKey, 60, weak, 2), kKey);
  const auto many = cpa_attack(acquire_traces(kKey, 4000, weak, 2), kKey);
  EXPECT_GT(many.correct_bytes, few.correct_bytes);
  EXPECT_EQ(many.correct_bytes, 16u);
}

TEST(Cpa, TracesToRecoveryFindsBudget) {
  const CpaLeakageModel exposed{1.0, 2.0};
  const auto budget = traces_to_full_recovery(
      kKey, exposed, {50, 200, 800, 3200}, 3);
  EXPECT_GT(budget, 0u);
  EXPECT_LE(budget, 800u);
  // Hopeless model: nothing in the budget list suffices.
  const CpaLeakageModel hopeless{0.001, 4.0};
  EXPECT_EQ(traces_to_full_recovery(kKey, hopeless, {50, 200}, 3), 0u);
}

TEST(Cpa, RejectsBadInput) {
  EXPECT_THROW(acquire_traces(crypto::Bytes(8, 0), 10, CpaLeakageModel{}, 1),
               std::invalid_argument);
  EXPECT_THROW(cpa_attack({}, kKey), std::invalid_argument);
  std::vector<CpaTrace> bad(1);
  bad[0].plaintext.resize(3);
  bad[0].samples.resize(16);
  EXPECT_THROW(cpa_attack(bad, kKey), std::invalid_argument);
}

// ---- Aging -------------------------------------------------------------------

TEST(Aging, SramDriftGrowsWithStressTime) {
  puf::SramPuf device(puf::SramPufConfig{}, 42);
  const puf::Response enrollment = device.evaluate_noiseless({});

  device.age(100.0);
  const double d_100h = crypto::fractional_hamming_distance(
      enrollment, device.evaluate_noiseless({}));
  device.age(9900.0);  // total 10k hours
  const double d_10kh = crypto::fractional_hamming_distance(
      enrollment, device.evaluate_noiseless({}));

  EXPECT_GT(d_100h, 0.0);
  EXPECT_GT(d_10kh, d_100h);
  EXPECT_LT(d_10kh, 0.25);  // aging degrades, it does not randomise
  EXPECT_DOUBLE_EQ(device.age_hours(), 10000.0);
}

TEST(Aging, SramIncrementalMatchesScale) {
  // Aging in many small steps accumulates comparable drift to one large
  // step (sqrt-time composition) — same order of magnitude.
  puf::SramPuf stepped(puf::SramPufConfig{}, 43);
  puf::SramPuf jumped(puf::SramPufConfig{}, 43);
  const puf::Response ref = stepped.evaluate_noiseless({});
  for (int i = 0; i < 10; ++i) stepped.age(1000.0);
  jumped.age(10000.0);
  const double d_stepped = crypto::fractional_hamming_distance(
      ref, stepped.evaluate_noiseless({}));
  const double d_jumped = crypto::fractional_hamming_distance(
      ref, jumped.evaluate_noiseless({}));
  EXPECT_NEAR(d_stepped, d_jumped, 0.03);
}

TEST(Aging, SramReenrollmentRestoresReliability) {
  puf::SramPuf device(puf::SramPufConfig{}, 44);
  const puf::Response old_enrollment = device.evaluate_noiseless({});
  device.age(50000.0);
  // Old enrollment has drifted...
  const double stale = crypto::fractional_hamming_distance(
      old_enrollment, device.evaluate_noiseless({}));
  // ...but a fresh enrollment is reliable again.
  const puf::Response fresh = device.evaluate_noiseless({});
  const double refreshed =
      puf::intra_distance(device, {}, fresh, 10);
  EXPECT_GT(stale, refreshed);
}

TEST(Aging, RoFrequenciesDegradeAndBitsDrift) {
  puf::RoPuf device(puf::RoPufConfig{}, 45);
  const auto c = puf::encode_ro_challenge(0, 1);
  const auto count_before = device.expected_count(0);

  // Collect reference bits over many pairs.
  std::vector<puf::Response> before;
  for (std::size_t i = 0; i < 60; ++i) {
    before.push_back(
        device.evaluate_noiseless(puf::encode_ro_challenge(i, i + 1)));
  }
  device.age(20000.0);
  EXPECT_LT(device.expected_count(0), count_before);  // slower when old
  int flips = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    flips += (device.evaluate_noiseless(puf::encode_ro_challenge(i, i + 1)) !=
              before[i]);
  }
  EXPECT_GT(flips, 0);
  EXPECT_LT(flips, 30);  // drift, not chaos
  (void)c;
}

TEST(Aging, NegativeHoursRejected) {
  puf::SramPuf sram(puf::SramPufConfig{}, 1);
  EXPECT_THROW(sram.age(-1.0), std::invalid_argument);
  puf::RoPuf ro(puf::RoPufConfig{}, 1);
  EXPECT_THROW(ro.age(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::attacks
