// Verdict pinning for the scripted protocol-attack battery: every attack
// must fail against the protocol as specified, and the honest parties
// must remain usable afterwards.
#include <gtest/gtest.h>

#include "attacks/protocol_attacks.hpp"

namespace neuropuls::attacks {
namespace {

class Battery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Battery, AllAttacksFailAllPartiesRecover) {
  for (const auto& report : run_protocol_battery(GetParam())) {
    EXPECT_FALSE(report.attacker_succeeded) << report.attack;
    EXPECT_TRUE(report.honest_parties_recovered) << report.attack;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Battery, ::testing::Values(1u, 2u, 3u));

TEST(Battery, DesyncDepthSweep) {
  for (unsigned depth : {1u, 2u, 5u, 8u}) {
    const auto report = desync_attack(7, depth);
    EXPECT_FALSE(report.attacker_succeeded) << "depth " << depth;
    EXPECT_TRUE(report.honest_parties_recovered) << "depth " << depth;
  }
}

TEST(Battery, ReportsAreLabelled) {
  const auto battery = run_protocol_battery(1);
  ASSERT_EQ(battery.size(), 4u);
  EXPECT_EQ(battery[0].attack, "replay");
  EXPECT_EQ(battery[1].attack, "mitm-session-graft");
  EXPECT_EQ(battery[2].attack, "desync");
  EXPECT_EQ(battery[3].attack, "forgery-scan");
}

}  // namespace
}  // namespace neuropuls::attacks
