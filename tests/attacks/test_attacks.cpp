// Attack-module tests: the headline §IV asymmetry — LR breaks the arbiter
// PUF and not the photonic one; power analysis breaks electronic leakage
// levels and not photonic ones — plus engine-level unit tests.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/brute_force.hpp"
#include "attacks/ml_attack.hpp"
#include "attacks/side_channel.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/composite.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::attacks {
namespace {

TEST(LogisticModel, LearnsLinearlySeparableData) {
  // y = [x0 + 0.5*x1 > 0]
  rng::Xoshiro256 rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<std::uint8_t> ys;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    xs.push_back({a, b, 1.0});
    ys.push_back(a + 0.5 * b > 0 ? 1 : 0);
  }
  LogisticModel model;
  model.train(xs, ys, LogisticConfig{});
  EXPECT_GT(model.accuracy(xs, ys), 0.97);
}

TEST(LogisticModel, RejectsBadInput) {
  LogisticModel model;
  EXPECT_THROW(model.train({}, {}, LogisticConfig{}), std::invalid_argument);
  EXPECT_THROW(model.train({{1.0}}, {1, 0}, LogisticConfig{}),
               std::invalid_argument);
  EXPECT_THROW(model.train({{1.0}, {1.0, 2.0}}, {1, 0}, LogisticConfig{}),
               std::invalid_argument);
  model.train({{1.0}, {-1.0}}, {1, 0}, LogisticConfig{});
  EXPECT_THROW(model.predict({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(model.accuracy({}, {}), std::invalid_argument);
}

TEST(FeatureMaps, ShapesAndValues) {
  const puf::Challenge c = {0b10000001};
  const auto raw = raw_feature_map()(c);
  ASSERT_EQ(raw.size(), 9u);
  EXPECT_DOUBLE_EQ(raw[0], 1.0);
  EXPECT_DOUBLE_EQ(raw[1], -1.0);
  EXPECT_DOUBLE_EQ(raw[8], 1.0);  // bias

  const auto parity = parity_feature_map(8)(c);
  ASSERT_EQ(parity.size(), 9u);
  // phi_7 = (1-2c_7) = -1; phi_0 = product over all bits = (-1)*(-1) = 1.
  EXPECT_DOUBLE_EQ(parity[7], -1.0);
  EXPECT_DOUBLE_EQ(parity[0], 1.0);
  EXPECT_THROW(parity_feature_map(16)(c), std::invalid_argument);
}

TEST(MlAttack, BreaksPlainArbiterPuf) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 42);
  AttackConfig config;
  config.training_crps = 3000;
  const auto result =
      model_attack(target, parity_feature_map(target.stages()), config);
  EXPECT_GT(result.test_accuracy, 0.95);
}

TEST(MlAttack, XorArbiterHarderAtSameBudget) {
  puf::ArbiterPufConfig xor_cfg;
  xor_cfg.xor_chains = 5;
  puf::ArbiterPuf plain(puf::ArbiterPufConfig{}, 42);
  puf::ArbiterPuf xored(xor_cfg, 42);
  AttackConfig config;
  config.training_crps = 3000;
  const auto feature = parity_feature_map(plain.stages());
  const auto plain_result = model_attack(plain, feature, config);
  const auto xor_result = model_attack(xored, feature, config);
  EXPECT_GT(plain_result.test_accuracy, xor_result.test_accuracy + 0.2);
  EXPECT_LT(xor_result.test_accuracy, 0.65);  // near chance
}

TEST(MlAttack, PhotonicPufResists) {
  // The §IV claim: "photonic PUFs are expected to provide a greater gain
  // with respect to modelling attacks". At the arbiter-breaking budget,
  // LR must stay near chance on the photonic PUF.
  puf::PhotonicPuf target(puf::small_photonic_config(), 7, 0);
  AttackConfig config;
  config.training_crps = 3000;
  config.test_crps = 300;
  const double accuracy =
      mean_attack_accuracy(target, raw_feature_map(), config, 4);
  EXPECT_LT(accuracy, 0.70);
  EXPECT_GT(accuracy, 0.35);
}

TEST(MlAttack, ChallengeEncryptionBlocksArbiterModel) {
  // The ref.-[30] countermeasure: encrypting challenges with a weak-PUF
  // key makes even the arbiter PUF unlearnable by its own parity model.
  auto inner = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, 42);
  const std::size_t stages = inner->stages();
  puf::EncryptedChallengePuf wrapped(std::move(inner),
                                     crypto::bytes_of("weak key"));
  AttackConfig config;
  config.training_crps = 3000;
  const auto result =
      model_attack(wrapped, parity_feature_map(stages), config);
  EXPECT_LT(result.test_accuracy, 0.62);
}

TEST(MlAttack, AccuracyGrowsWithBudgetOnArbiter) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 5);
  const auto feature = parity_feature_map(target.stages());
  AttackConfig small;
  small.training_crps = 100;
  AttackConfig large;
  large.training_crps = 5000;
  const auto small_result = model_attack(target, feature, small);
  const auto large_result = model_attack(target, feature, large);
  EXPECT_GT(large_result.test_accuracy, small_result.test_accuracy);
}

TEST(MlAttack, RejectsEmptyBudget) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 5);
  AttackConfig config;
  config.training_crps = 0;
  EXPECT_THROW(model_attack(target, raw_feature_map(), config),
               std::invalid_argument);
  EXPECT_THROW(
      mean_attack_accuracy(target, raw_feature_map(), AttackConfig{}, 0),
      std::invalid_argument);
}

// ---- Side channel --------------------------------------------------------------

TEST(SideChannel, ElectronicLeakageBreaksWithFewTraces) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 9);
  const puf::Challenge c(8, 0x3C);
  const auto result =
      power_analysis_attack(target, c, 500, electronic_leakage(), 1);
  EXPECT_GT(result.bit_recovery_accuracy, 0.95);
}

TEST(SideChannel, PhotonicLeakageResistsSameBudget) {
  puf::PhotonicPuf target(puf::small_photonic_config(), 9, 0);
  const puf::Challenge c(2, 0x3C);
  const auto result =
      power_analysis_attack(target, c, 500, photonic_leakage(), 1);
  EXPECT_LT(result.bit_recovery_accuracy, 0.75);
}

TEST(SideChannel, MoreTracesHelpTheAttacker) {
  puf::ArbiterPuf target(puf::ArbiterPufConfig{}, 9);
  const puf::Challenge c(8, 0x3C);
  LeakageModel weak{0.3, 4.0};
  const auto few = power_analysis_attack(target, c, 10, weak, 2);
  const auto many = power_analysis_attack(target, c, 2000, weak, 2);
  EXPECT_GT(many.bit_recovery_accuracy, few.bit_recovery_accuracy);
  EXPECT_THROW(power_analysis_attack(target, c, 0, weak, 2),
               std::invalid_argument);
}

TEST(SideChannel, RemanenceWindowContrast) {
  puf::PhotonicPuf photonic(puf::small_photonic_config(), 9, 0);
  const double photonic_window =
      remanence_window_s(true, photonic.interrogation_time_s());
  const double sram_window = remanence_window_s(false, 0.0);
  EXPECT_LT(photonic_window, 100e-9);       // §IV: below 100 ns
  EXPECT_GT(sram_window / photonic_window, 1e6);
}

// ---- Guessing analysis -----------------------------------------------------------

TEST(BruteForce, GuessingNumbers) {
  EXPECT_DOUBLE_EQ(expected_guesses(1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_guesses(8.0), 128.0);
  EXPECT_GT(expected_guesses(256.0), 1e18);  // capped but astronomical
  EXPECT_THROW(expected_guesses(-1.0), std::invalid_argument);

  EXPECT_DOUBLE_EQ(online_guess_success(8.0, 256), 1.0);
  EXPECT_NEAR(online_guess_success(20.0, 1), 1.0 / 1048576.0, 1e-12);

  EXPECT_DOUBLE_EQ(eke_rate_reduction(1e9, 1.0), 1e9);
  EXPECT_THROW(eke_rate_reduction(0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::attacks
