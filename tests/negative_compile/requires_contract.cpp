// Negative-compile case: calling an NP_REQUIRES function without
// holding the required mutex. Clean as written; -DNP_NEGATIVE calls the
// locked helper bare, which -Werror=thread-safety must reject.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Store {
 public:
  void insert() {
    const neuropuls::common::MutexLock lock(mutex_);
    insert_locked();
  }

#ifdef NP_NEGATIVE
  // NP_REQUIRES(mutex_) not satisfied: the analysis rejects this.
  void insert_bare() { insert_locked(); }
#endif

 private:
  void insert_locked() NP_REQUIRES(mutex_) { ++count_; }

  neuropuls::common::Mutex mutex_;
  int count_ NP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Store s;
  s.insert();
  return 0;
}
