// Negative-compile case: reading an NP_GUARDED_BY member without its
// mutex. Clean as written; -DNP_NEGATIVE adds the racy read, which
// -Werror=thread-safety must reject.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const neuropuls::common::MutexLock lock(mutex_);
    ++value_;
  }

  int read() const {
    const neuropuls::common::MutexLock lock(mutex_);
    return value_;
  }

#ifdef NP_NEGATIVE
  // Unguarded access to value_: the analysis rejects this.
  int racy_read() const { return value_; }
#endif

 private:
  mutable neuropuls::common::Mutex mutex_;
  int value_ NP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
