// Negative-compile case: inverting a declared NP_ACQUIRED_BEFORE lock
// order. Clean as written; -DNP_NEGATIVE acquires second_ before
// first_, which -Wthread-safety-beta (the acquired_before/after checker)
// must reject.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Ordered {
 public:
  void in_order() {
    const neuropuls::common::MutexLock a(first_);
    const neuropuls::common::MutexLock b(second_);
  }

#ifdef NP_NEGATIVE
  // Inverted acquisition: the analysis rejects this.
  void inverted() {
    const neuropuls::common::MutexLock b(second_);
    const neuropuls::common::MutexLock a(first_);
  }
#endif

 private:
  neuropuls::common::Mutex first_ NP_ACQUIRED_BEFORE(second_);
  neuropuls::common::Mutex second_;
};

}  // namespace

int main() {
  Ordered o;
  o.in_order();
  return 0;
}
