// Attestation protocol tests (§III-B): digest correctness, compromise
// detection, memory-hiding vs the temporal constraint, challenge
// freshness, and the pPUF-speed property.
#include <gtest/gtest.h>

#include "core/attestation.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::core {
namespace {

crypto::Bytes make_memory(std::size_t size, std::uint64_t seed) {
  crypto::ChaChaDrbg rng(crypto::concat(
      {crypto::bytes_of("memory"), crypto::Bytes{static_cast<std::uint8_t>(seed)}}));
  return rng.generate(size);
}

struct Harness {
  std::unique_ptr<puf::PhotonicPuf> device_puf;
  std::unique_ptr<puf::PhotonicPuf> verifier_model;  // identical clone
  std::unique_ptr<AttestDevice> device;
  std::unique_ptr<AttestVerifier> verifier;
  crypto::ChaChaDrbg rng{crypto::bytes_of("attest-rng")};
};

Harness make_harness(std::size_t memory_size = 8192) {
  Harness s;
  const auto cfg = puf::small_photonic_config();
  s.device_puf = std::make_unique<puf::PhotonicPuf>(cfg, 81, 0);
  s.verifier_model = std::make_unique<puf::PhotonicPuf>(cfg, 81, 0);
  const crypto::Bytes memory = make_memory(memory_size, 1);
  AttestationConfig config;
  config.chunk_size = 512;
  s.device = std::make_unique<AttestDevice>(*s.device_puf, memory, config);
  s.verifier = std::make_unique<AttestVerifier>(*s.verifier_model, memory,
                                                config, AttestationCostModel{});
  return s;
}

TEST(Attestation, HonestDeviceAccepted) {
  Harness s = make_harness();
  const auto request = s.verifier->start(1, /*timestamp=*/1000, s.rng);
  const auto report = s.device->handle_request(request);
  ASSERT_TRUE(report.has_value());
  const double elapsed =
      s.verifier->honest_time_ns() * s.device->last_time_factor();
  const auto outcome = s.verifier->check(*report, elapsed);
  EXPECT_TRUE(outcome.digest_ok);
  EXPECT_TRUE(outcome.time_ok);
  EXPECT_TRUE(outcome.accepted);
}

TEST(Attestation, SingleByteCorruptionDetected) {
  Harness s = make_harness();
  s.device->corrupt_memory(4096, 0x5A);
  const auto request = s.verifier->start(1, 1000, s.rng);
  const auto report = s.device->handle_request(request);
  ASSERT_TRUE(report.has_value());
  const auto outcome = s.verifier->check(*report, s.verifier->honest_time_ns());
  EXPECT_FALSE(outcome.digest_ok);
  EXPECT_FALSE(outcome.accepted);
}

TEST(Attestation, MemoryHidingPassesDigestButFailsTime) {
  Harness s = make_harness();
  const crypto::Bytes pristine = s.device->memory();
  s.device->corrupt_memory(100, 0xFF);
  // The attacker redirects reads to a pristine copy at 1.6x per-chunk cost
  // (copy + bounds bookkeeping), beyond the 1.3x bound.
  s.device->enable_memory_hiding(pristine, 1.6);

  const auto request = s.verifier->start(1, 1000, s.rng);
  const auto report = s.device->handle_request(request);
  ASSERT_TRUE(report.has_value());
  const double elapsed =
      s.verifier->honest_time_ns() * s.device->last_time_factor();
  const auto outcome = s.verifier->check(*report, elapsed);
  EXPECT_TRUE(outcome.digest_ok);    // the hash itself is clean
  EXPECT_FALSE(outcome.time_ok);     // but the clock gives it away
  EXPECT_FALSE(outcome.accepted);
}

TEST(Attestation, DigestDependsOnChallengeAndTimestamp) {
  // 16 chunks: enough that two independent walk permutations colliding is
  // practically impossible (16! orderings).
  Harness s = make_harness(8192);
  const crypto::Bytes memory = s.device->memory();
  const puf::Challenge c1(s.device_puf->challenge_bytes(), 0x11);
  const puf::Challenge c2(s.device_puf->challenge_bytes(), 0x22);
  const auto d_c1 = attestation_digest(memory, *s.device_puf, 1000, c1, 512);
  const auto d_c2 = attestation_digest(memory, *s.device_puf, 1000, c2, 512);
  const auto d_t2 = attestation_digest(memory, *s.device_puf, 2000, c1, 512);
  EXPECT_NE(d_c1, d_c2);
  EXPECT_NE(d_c1, d_t2);
  // Deterministic for fixed inputs.
  EXPECT_EQ(d_c1, attestation_digest(memory, *s.device_puf, 1000, c1, 512));
}

TEST(Attestation, DigestCoversAllMemory) {
  // Any single-chunk change anywhere must change the digest — the walk
  // "exhausts all memory regions".
  Harness s = make_harness(4096);
  const puf::Challenge c(s.device_puf->challenge_bytes(), 0x33);
  const crypto::Bytes memory = s.device->memory();
  const auto reference =
      attestation_digest(memory, *s.device_puf, 7, c, 512);
  for (std::size_t chunk = 0; chunk < memory.size() / 512; ++chunk) {
    crypto::Bytes mutated = memory;
    mutated[chunk * 512 + 13] ^= 0x80;
    EXPECT_NE(attestation_digest(mutated, *s.device_puf, 7, c, 512),
              reference)
        << "chunk " << chunk;
  }
}

TEST(Attestation, ReplayedReportRejected) {
  Harness s = make_harness();
  const auto request = s.verifier->start(1, 1000, s.rng);
  const auto report = s.device->handle_request(request);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(
      s.verifier->check(*report, s.verifier->honest_time_ns()).accepted);
  // The challenge is one-shot: checking the same report again fails.
  EXPECT_FALSE(
      s.verifier->check(*report, s.verifier->honest_time_ns()).accepted);
}

TEST(Attestation, PufFasterThanHashKeepsBoundTight) {
  // §III-B: "the inherent speed of the pPUF guarantees that the constant
  // challenge-and-response generation never slows down the protocol."
  // With the default cost model the per-chunk time must be hash-dominated:
  // making the PUF instantaneous must not change the honest estimate.
  AttestationConfig config;
  AttestationCostModel with_puf;
  AttestationCostModel free_puf = with_puf;
  free_puf.puf_response_ns = 0.0;
  EXPECT_DOUBLE_EQ(honest_attestation_time_ns(1 << 20, config, with_puf),
                   honest_attestation_time_ns(1 << 20, config, free_puf));
}

TEST(Attestation, HonestTimeLinearInMemory) {
  AttestationConfig config;
  AttestationCostModel cost;
  const double t1 = honest_attestation_time_ns(1 << 16, config, cost);
  const double t2 = honest_attestation_time_ns(1 << 17, config, cost);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(Attestation, MalformedRequestIgnored) {
  Harness s = make_harness();
  EXPECT_FALSE(s.device
                   ->handle_request(net::Message{net::MessageType::kData, 1,
                                                 crypto::Bytes(64, 0)})
                   .has_value());
  EXPECT_FALSE(s.device
                   ->handle_request(net::Message{
                       net::MessageType::kAttestRequest, 1, crypto::Bytes(4, 0)})
                   .has_value());
}

TEST(Attestation, ConstructionRejectsBadState) {
  puf::PhotonicPuf p(puf::small_photonic_config(), 81, 0);
  EXPECT_THROW(AttestDevice(p, {}, AttestationConfig{}),
               std::invalid_argument);
  EXPECT_THROW(AttestVerifier(p, {}, AttestationConfig{},
                              AttestationCostModel{}),
               std::invalid_argument);
  EXPECT_THROW(attestation_digest({}, p, 0, puf::Challenge(2, 0), 512),
               std::invalid_argument);
  AttestDevice device(p, crypto::Bytes(128, 1), AttestationConfig{});
  EXPECT_THROW(device.enable_memory_hiding(crypto::Bytes(64, 0), 2.0),
               std::invalid_argument);
  EXPECT_THROW(device.enable_memory_hiding(crypto::Bytes(128, 0), 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::core
