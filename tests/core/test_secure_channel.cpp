// Secure-channel tests: duplex round trips, replay/reorder/tamper
// rejection with poisoning, direction separation, and the rekey ratchet.
#include <gtest/gtest.h>

#include "core/aka_eke.hpp"
#include "core/secure_channel.hpp"

namespace neuropuls::core {
namespace {

common::SecretBytes session_key() {
  // A real session key from an EKE handshake.
  const crypto::Bytes secret = crypto::bytes_of("crp secret");
  auto outcome = run_eke_handshake(secret, secret,
                                   crypto::DhGroup::modp1536(), 1, 5);
  return std::move(outcome.initiator.session_key);
}

TEST(SecureChannel, DuplexRoundTrip) {
  const auto key = session_key();
  SecureChannel initiator(key.clone(), true);
  SecureChannel responder(key.clone(), false);

  const auto record = initiator.seal(crypto::bytes_of("hello device"));
  const auto opened = responder.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, crypto::bytes_of("hello device"));

  const auto reply = responder.seal(crypto::bytes_of("hello verifier"));
  const auto opened_reply = initiator.open(reply);
  ASSERT_TRUE(opened_reply.has_value());
  EXPECT_EQ(*opened_reply, crypto::bytes_of("hello verifier"));
}

TEST(SecureChannel, ManyRecordsInOrder) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  for (int i = 0; i < 100; ++i) {
    crypto::Bytes msg = crypto::bytes_of("record #");
    msg.push_back(static_cast<std::uint8_t>(i));
    const auto opened = b.open(a.seal(msg));
    ASSERT_TRUE(opened.has_value()) << i;
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(a.records_sent(), 100u);
  EXPECT_EQ(b.records_received(), 100u);
}

TEST(SecureChannel, EmptyPayloadAllowed) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  const auto opened = b.open(a.seal({}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(SecureChannel, ReplayPoisons) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  const auto record = a.seal(crypto::bytes_of("once"));
  ASSERT_TRUE(b.open(record).has_value());
  EXPECT_FALSE(b.open(record).has_value());  // replay
  EXPECT_TRUE(b.poisoned());
  // After poisoning, even valid traffic is dead.
  EXPECT_FALSE(b.open(a.seal(crypto::bytes_of("later"))).has_value());
}

TEST(SecureChannel, ReorderRejected) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  const auto first = a.seal(crypto::bytes_of("1"));
  const auto second = a.seal(crypto::bytes_of("2"));
  EXPECT_FALSE(b.open(second).has_value());  // out of order
  EXPECT_TRUE(b.poisoned());
  (void)first;
}

TEST(SecureChannel, TamperRejected) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  auto record = a.seal(crypto::bytes_of("important"));
  record[10] ^= 0x01;
  EXPECT_FALSE(b.open(record).has_value());
  EXPECT_TRUE(b.poisoned());
}

TEST(SecureChannel, TruncationRejected) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  const auto record = a.seal(crypto::bytes_of("x"));
  EXPECT_FALSE(
      b.open(crypto::ByteView(record).first(record.size() - 1)).has_value());
  SecureChannel c(key.clone(), false);
  EXPECT_FALSE(c.open(crypto::Bytes(10, 0)).has_value());
}

TEST(SecureChannel, DirectionsUseIndependentKeys) {
  const auto key = session_key();
  SecureChannel a(key.clone(), true), b(key.clone(), false);
  // Reflecting a's record back at a must fail (it expects the r2i key).
  const auto record = a.seal(crypto::bytes_of("reflect me"));
  EXPECT_FALSE(a.open(record).has_value());
}

TEST(SecureChannel, DistinctSessionKeysDoNotInterop) {
  SecureChannel a(session_key(), true);
  const crypto::Bytes other_secret = crypto::bytes_of("other");
  auto other = run_eke_handshake(other_secret, other_secret,
                                 crypto::DhGroup::modp1536(), 2, 9);
  SecureChannel b(std::move(other.responder.session_key), false);
  EXPECT_FALSE(b.open(a.seal(crypto::bytes_of("?"))).has_value());
}

TEST(SecureChannel, RekeyRatchetKeepsWorking) {
  SecureChannelConfig config;
  config.rekey_interval = 8;  // ratchet every 8 records
  const auto key = session_key();
  SecureChannel a(key.clone(), true, config), b(key.clone(), false, config);
  for (int i = 0; i < 40; ++i) {
    const auto opened = b.open(a.seal(crypto::bytes_of("r")));
    ASSERT_TRUE(opened.has_value()) << "record " << i;
  }
}

TEST(SecureChannel, RekeyChangesCiphertexts) {
  SecureChannelConfig config;
  config.rekey_interval = 2;
  const auto key = session_key();
  SecureChannel a1(key.clone(), true, config);
  SecureChannel a2(key.clone(), true);  // no ratchet
  // Skip to sequence 2 on both.
  (void)a1.seal({});
  (void)a1.seal({});
  (void)a2.seal({});
  (void)a2.seal({});
  // Same sequence number + same plaintext, but a1 has ratcheted.
  EXPECT_NE(a1.seal(crypto::bytes_of("same")),
            a2.seal(crypto::bytes_of("same")));
}

TEST(SecureChannel, ConstructionRejectsBadInput) {
  EXPECT_THROW(SecureChannel({}, true), std::invalid_argument);
  SecureChannelConfig config;
  config.rekey_interval = 0;
  EXPECT_THROW(SecureChannel(common::SecretBytes(crypto::Bytes(32, 1)), true,
                             config),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::core
