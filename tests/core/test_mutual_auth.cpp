// Mutual-authentication protocol tests (Fig. 4): the happy path, CRP
// rotation, verifier O(1) state, freshness/replay, tampering, memory-hash
// integrity hints, and desynchronisation recovery.
#include <gtest/gtest.h>

#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::core {
namespace {

struct Harness {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<AuthDevice> device;
  std::unique_ptr<AuthVerifier> verifier;
  std::unique_ptr<net::DuplexChannel> channel;
};

Harness make_harness(std::uint64_t device_index = 0) {
  Harness s;
  s.channel = std::make_unique<net::DuplexChannel>();
  s.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(), 71,
                                             device_index);
  crypto::ChaChaDrbg rng(crypto::bytes_of("provision"));
  const auto provisioned = provision(*s.puf, rng);
  const crypto::Bytes memory = crypto::bytes_of(
      "firmware image v1.0 -- pretend this is the device's flash");
  s.device = std::make_unique<AuthDevice>(*s.puf, provisioned.device_crp,
                                          memory);
  s.verifier = std::make_unique<AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      s.puf->challenge_bytes());
  return s;
}

TEST(MutualAuth, SingleSessionSucceeds) {
  Harness s = make_harness();
  EXPECT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel, 1, 0xAA));
  EXPECT_EQ(s.device->completed_sessions(), 1u);
  EXPECT_EQ(s.verifier->completed_sessions(), 1u);
}

TEST(MutualAuth, CrpRotatesEverySession) {
  Harness s = make_harness();
  // Snapshot plain copies of each session secret (test-only unwrap).
  const auto snapshot = [](const common::SecretBytes& secret) {
    const auto view = secret.reveal();
    return crypto::Bytes(view.begin(), view.end());
  };
  std::vector<puf::Response> secrets;
  secrets.push_back(snapshot(s.device->current_response()));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel,
                                 static_cast<std::uint64_t>(i),
                                 0x1000u + static_cast<std::uint64_t>(i)));
    secrets.push_back(snapshot(s.device->current_response()));
    // Device and verifier stay in lockstep.
    EXPECT_TRUE(common::ct_equal(s.device->current_response(),
                                 s.verifier->current_secret()));
  }
  // All session secrets distinct (fresh CRP per session).
  for (std::size_t a = 0; a < secrets.size(); ++a) {
    for (std::size_t b = a + 1; b < secrets.size(); ++b) {
      EXPECT_NE(secrets[a], secrets[b]) << a << "," << b;
    }
  }
}

TEST(MutualAuth, VerifierStateIsOneResponse) {
  // The paper's scalability claim: verifier stores one response (plus a
  // one-deep fallback), not a CRP database. Sanity-check the object's
  // state size indirectly: the secret is exactly one response long.
  Harness s = make_harness();
  EXPECT_EQ(s.verifier->current_secret().size(), s.puf->response_bytes());
}

TEST(MutualAuth, ReplayedResponseRejected) {
  Harness s = make_harness();
  // Run an honest session while recording the device's response.
  net::Message recorded{};
  s.channel->set_adversary([&](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kBtoA &&
        m.type == net::MessageType::kAuthResponse) {
      recorded = m;
    }
    return net::Verdict::pass();
  });
  ASSERT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel, 1, 0x01));

  // Attacker replays the recorded response in a new session.
  const auto request = s.verifier->start(2, 0x02);
  (void)request;  // never reaches the device
  const auto outcome = s.verifier->process_response(recorded);
  EXPECT_NE(outcome.status, AuthStatus::kOk);
}

TEST(MutualAuth, ReplayedResponseBurnsNoFreshCrp) {
  // Regression (abuse-resistance PR): a re-sent stale challenge response
  // must be rejected cheaply — no second rotation, no session recount —
  // so a replay storm costs the attacker rate-limit tokens, never fresh
  // CRP/PUF material on the verifier side.
  Harness s = make_harness();
  const auto request = s.verifier->start(1, 0xAB);
  const auto response = s.device->handle_request(request);
  ASSERT_TRUE(response.has_value());
  const auto first = s.verifier->process_response(*response);
  ASSERT_EQ(first.status, AuthStatus::kOk);
  ASSERT_EQ(s.verifier->completed_sessions(), 1u);

  // Byte-identical replay of the response that just authenticated. The
  // one-deep fallback secret could re-verify its MAC — the replay latch
  // must reject before any MAC work.
  for (int storm = 0; storm < 5; ++storm) {
    const auto replay = s.verifier->process_response(*response);
    EXPECT_EQ(replay.status, AuthStatus::kReplayed);
    EXPECT_FALSE(replay.confirm.has_value());
  }
  EXPECT_EQ(s.verifier->completed_sessions(), 1u);  // not double-counted

  // A fresh session still works: the latch clears on start().
  ASSERT_TRUE(s.device->handle_confirm(*first.confirm) == AuthStatus::kOk);
  EXPECT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel, 2, 0xCD));
}

TEST(MutualAuth, ReplayedRequestBurnsNoPufEvaluation) {
  // Device side of the same discipline: a replayed (or retried) auth
  // request for the in-flight session is answered from the wire cache —
  // byte-identical — instead of evaluating the PUF and deriving a fresh
  // candidate CRP per replayed frame.
  Harness s = make_harness();
  const auto request = s.verifier->start(1, 0x77);
  const auto response = s.device->handle_request(request);
  ASSERT_TRUE(response.has_value());
  for (int storm = 0; storm < 5; ++storm) {
    const auto again = s.device->handle_request(request);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->payload, response->payload);
    EXPECT_EQ(again->session_id, response->session_id);
  }
  // The pending CRP is unchanged, so the handshake still completes.
  const auto outcome = s.verifier->process_response(*response);
  ASSERT_EQ(outcome.status, AuthStatus::kOk);
  EXPECT_EQ(s.device->handle_confirm(*outcome.confirm), AuthStatus::kOk);
  EXPECT_EQ(s.device->completed_sessions(), 1u);
}

TEST(MutualAuth, TamperedResponseRejected) {
  Harness s = make_harness();
  s.channel->set_adversary([](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kBtoA &&
        m.type == net::MessageType::kAuthResponse) {
      net::Message forged = m;
      forged.payload[0] ^= 0x01;  // flip one masked-response bit
      return net::Verdict::replace(forged);
    }
    return net::Verdict::pass();
  });
  EXPECT_FALSE(run_auth_session(*s.verifier, *s.device, *s.channel, 1, 0x01));
}

TEST(MutualAuth, WrongDeviceRejected) {
  // A different physical device (same wafer, different die) cannot answer
  // for the provisioned one.
  Harness s = make_harness(0);
  puf::PhotonicPuf impostor_puf(puf::small_photonic_config(), 71, 1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("impostor"));
  const auto impostor_crp = provision(impostor_puf, rng);
  AuthDevice impostor(impostor_puf, impostor_crp.device_crp,
                      crypto::bytes_of("firmware"));
  EXPECT_FALSE(run_auth_session(*s.verifier, impostor, *s.channel, 1, 0x01));
}

TEST(MutualAuth, MemoryCorruptionFlagged) {
  Harness s = make_harness();
  s.device->corrupt_memory(3, 0xEE);
  // Authentication still succeeds (H is an integrity *hint*, detection is
  // attestation's job) but the hash mismatch is reported.
  const auto request = s.verifier->start(1, 0x01);
  const auto response = s.device->handle_request(request);
  ASSERT_TRUE(response.has_value());
  const auto outcome = s.verifier->process_response(*response);
  EXPECT_EQ(outcome.status, AuthStatus::kOk);
  EXPECT_FALSE(outcome.memory_hash_ok);
}

TEST(MutualAuth, CleanDeviceMemoryHashOk) {
  Harness s = make_harness();
  const auto request = s.verifier->start(1, 0x01);
  const auto response = s.device->handle_request(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(s.verifier->process_response(*response).memory_hash_ok);
}

TEST(MutualAuth, DesyncRecoveryAfterLostConfirm) {
  Harness s = make_harness();

  // Session 1: the verifier's confirm is lost -> verifier rotated,
  // device did not.
  s.channel->set_adversary([](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kAtoB &&
        m.type == net::MessageType::kAuthConfirm) {
      return net::Verdict::drop();
    }
    return net::Verdict::pass();
  });
  EXPECT_FALSE(run_auth_session(*s.verifier, *s.device, *s.channel, 1, 0x01));
  EXPECT_EQ(s.device->completed_sessions(), 0u);
  EXPECT_EQ(s.verifier->completed_sessions(), 1u);
  EXPECT_FALSE(common::ct_equal(s.device->current_response(),
                                s.verifier->current_secret()));

  // Session 2 with an honest channel: the fallback secret recovers sync.
  s.channel->set_adversary(nullptr);
  EXPECT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel, 2, 0x02));
  EXPECT_TRUE(common::ct_equal(s.device->current_response(),
                               s.verifier->current_secret()));
}

TEST(MutualAuth, RepeatedConfirmLossStillRecoverable) {
  Harness s = make_harness();
  s.channel->set_adversary([](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kAtoB &&
        m.type == net::MessageType::kAuthConfirm) {
      return net::Verdict::drop();
    }
    return net::Verdict::pass();
  });
  // Lose the confirm three sessions in a row.
  for (std::uint64_t i = 1; i <= 3; ++i) {
    EXPECT_FALSE(run_auth_session(*s.verifier, *s.device, *s.channel, i, i));
  }
  s.channel->set_adversary(nullptr);
  EXPECT_TRUE(run_auth_session(*s.verifier, *s.device, *s.channel, 9, 0x09));
}

TEST(MutualAuth, MalformedInputsRejectedWithoutStateChange) {
  Harness s = make_harness();
  const common::SecretBytes before = s.device->current_response().clone();

  EXPECT_FALSE(s.device
                   ->handle_request(net::Message{net::MessageType::kData, 1,
                                                 crypto::Bytes(8, 0)})
                   .has_value());
  EXPECT_FALSE(s.device
                   ->handle_request(net::Message{
                       net::MessageType::kAuthRequest, 1, crypto::Bytes(3, 0)})
                   .has_value());
  EXPECT_EQ(s.device->handle_confirm(
                net::Message{net::MessageType::kAuthConfirm, 1,
                             crypto::Bytes(31, 0)}),
            AuthStatus::kMalformed);
  EXPECT_EQ(s.device->handle_confirm(
                net::Message{net::MessageType::kAuthConfirm, 1,
                             crypto::Bytes(32, 0)}),
            AuthStatus::kBadSession);  // no pending session
  EXPECT_TRUE(common::ct_equal(s.device->current_response(), before));

  const auto outcome = s.verifier->process_response(
      net::Message{net::MessageType::kAuthResponse, 99, crypto::Bytes(8, 0)});
  EXPECT_EQ(outcome.status, AuthStatus::kBadSession);
}

TEST(CrpSerialization, RoundTripAndValidation) {
  Harness s = make_harness();
  crypto::ChaChaDrbg rng(crypto::bytes_of("crp-ser"));
  const auto provisioned = provision(*s.puf, rng);

  const crypto::Bytes blob = serialize_crp(provisioned.device_crp);
  const ProvisionedCrp restored = deserialize_crp(blob);
  EXPECT_EQ(restored.challenge, provisioned.device_crp.challenge);
  EXPECT_EQ(restored.response, provisioned.device_crp.response);

  // A restored CRP provisions a working device.
  AuthDevice device(*s.puf, restored, crypto::bytes_of("fw"));
  AuthVerifier verifier(restored.response,
                        crypto::Sha256::hash(crypto::bytes_of("fw")),
                        s.puf->challenge_bytes());
  net::DuplexChannel channel;
  EXPECT_TRUE(run_auth_session(verifier, device, channel, 1, 0x55));

  EXPECT_THROW(deserialize_crp(crypto::Bytes(4, 0)), std::runtime_error);
  EXPECT_THROW(deserialize_crp(crypto::ByteView(blob).first(blob.size() - 2)),
               std::runtime_error);
  crypto::Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_crp(trailing), std::runtime_error);
}

TEST(MutualAuth, ConstructionRejectsBadState) {
  puf::PhotonicPuf p(puf::small_photonic_config(), 71, 0);
  EXPECT_THROW(AuthDevice(p, ProvisionedCrp{}, crypto::bytes_of("m")),
               std::invalid_argument);
  EXPECT_THROW(AuthVerifier({}, crypto::Bytes(32, 0), 2),
               std::invalid_argument);
  EXPECT_THROW(AuthVerifier(crypto::Bytes(4, 1), crypto::Bytes(32, 0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::core
