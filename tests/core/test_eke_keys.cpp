// EKE AKA handshake tests (§IV) and key-manager tests.
#include <gtest/gtest.h>

#include "core/aka_eke.hpp"
#include "core/key_manager.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/sram_puf.hpp"

namespace neuropuls::core {
namespace {

const crypto::DhGroup& group() { return crypto::DhGroup::modp1536(); }

TEST(Eke, HandshakeAgreesOnKey) {
  const crypto::Bytes secret = crypto::bytes_of("shared CRP response");
  const auto outcome = run_eke_handshake(secret, secret, group(), 1, 42);
  EXPECT_TRUE(outcome.initiator.succeeded);
  EXPECT_TRUE(outcome.responder.succeeded);
  EXPECT_TRUE(outcome.keys_match);
  EXPECT_EQ(outcome.initiator.session_key.size(), 32u);
}

TEST(Eke, WrongPasswordFails) {
  const auto outcome = run_eke_handshake(crypto::bytes_of("secret-A"),
                                         crypto::bytes_of("secret-B"),
                                         group(), 1, 42);
  EXPECT_FALSE(outcome.initiator.succeeded);
  EXPECT_FALSE(outcome.keys_match);
}

TEST(Eke, ForwardSecrecyDistinctSessionKeys) {
  // Same password, different ephemeral randomness -> unrelated keys.
  const crypto::Bytes secret = crypto::bytes_of("same CRP");
  const auto s1 = run_eke_handshake(secret, secret, group(), 1, 100);
  const auto s2 = run_eke_handshake(secret, secret, group(), 2, 200);
  ASSERT_TRUE(s1.keys_match);
  ASSERT_TRUE(s2.keys_match);
  EXPECT_FALSE(
      common::ct_equal(s1.initiator.session_key, s2.initiator.session_key));
}

TEST(Eke, TamperedServerHelloRejected) {
  const crypto::Bytes secret = crypto::bytes_of("pw");
  crypto::Bytes si = crypto::bytes_of("i");
  crypto::Bytes sr = crypto::bytes_of("r");
  EkeParty initiator(secret, group(), crypto::ChaChaDrbg(si));
  EkeParty responder(secret, group(), crypto::ChaChaDrbg(sr));

  const auto hello = initiator.initiate(5);
  auto server_hello = responder.respond(hello);
  ASSERT_TRUE(server_hello.has_value());
  server_hello->payload[20] ^= 0x01;
  EXPECT_FALSE(initiator.confirm(*server_hello).has_value());
  EXPECT_TRUE(initiator.session_key().empty());
}

TEST(Eke, TamperedClientConfirmRejected) {
  const crypto::Bytes secret = crypto::bytes_of("pw");
  EkeParty initiator(secret, group(), crypto::ChaChaDrbg(crypto::bytes_of("i2")));
  EkeParty responder(secret, group(), crypto::ChaChaDrbg(crypto::bytes_of("r2")));
  const auto hello = initiator.initiate(5);
  const auto server_hello = responder.respond(hello);
  ASSERT_TRUE(server_hello.has_value());
  auto confirm = initiator.confirm(*server_hello);
  ASSERT_TRUE(confirm.has_value());
  confirm->payload[0] ^= 0x01;
  EXPECT_FALSE(responder.finalize(*confirm));
}

TEST(Eke, MalformedMessagesRejected) {
  const crypto::Bytes secret = crypto::bytes_of("pw");
  EkeParty party(secret, group(), crypto::ChaChaDrbg(crypto::bytes_of("x")));
  EXPECT_FALSE(party
                   .respond(net::Message{net::MessageType::kEkeClientHello, 1,
                                         crypto::Bytes(10, 0)})
                   .has_value());
  EXPECT_FALSE(party
                   .confirm(net::Message{net::MessageType::kEkeServerHello, 1,
                                         crypto::Bytes(10, 0)})
                   .has_value());
  EXPECT_FALSE(party.finalize(
      net::Message{net::MessageType::kEkeClientConfirm, 1, crypto::Bytes(32, 0)}));
  EXPECT_THROW(EkeParty({}, group(), crypto::ChaChaDrbg(crypto::bytes_of("y"))),
               std::invalid_argument);
}

// ---- Key manager ---------------------------------------------------------------

TEST(KeyManager, SramEnrollAndDerive) {
  puf::SramPufConfig cfg;
  cfg.cells = 1024;  // >= 635 extractor bits
  puf::SramPuf weak_puf(cfg, 7);
  KeyManager manager(weak_puf);

  crypto::ChaChaDrbg rng(crypto::bytes_of("enroll"));
  const auto record = manager.enroll(rng);
  const auto keys = manager.derive(record);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(keys->encryption_key.size(), 16u);
  EXPECT_EQ(keys->mac_key.size(), 32u);
  EXPECT_EQ(keys->binding_key.size(), 16u);
  // Purpose keys pairwise distinct (taint-typed: compare via ct_equal).
  EXPECT_FALSE(common::ct_equal(keys->encryption_key, keys->binding_key));

  // Boot-to-boot stability: ten fresh derivations give identical keys.
  for (int boot = 0; boot < 10; ++boot) {
    const auto rederived = manager.derive(record);
    ASSERT_TRUE(rederived.has_value());
    EXPECT_TRUE(
        common::ct_equal(rederived->encryption_key, keys->encryption_key));
  }
}

TEST(KeyManager, PhotonicWeakUsage) {
  puf::PhotonicPuf strong_puf(puf::small_photonic_config(), 91, 0);
  KeyManager manager(strong_puf);
  crypto::ChaChaDrbg rng(crypto::bytes_of("enroll-ph"));
  const auto record = manager.enroll(rng);
  const auto keys = manager.derive(record);
  ASSERT_TRUE(keys.has_value());
  const auto again = manager.derive(record);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(common::ct_equal(keys->encryption_key, again->encryption_key));
}

TEST(KeyManager, DistinctDevicesDistinctKeys) {
  puf::SramPufConfig cfg;
  cfg.cells = 1024;
  puf::SramPuf puf_a(cfg, 1), puf_b(cfg, 2);
  KeyManager manager_a(puf_a), manager_b(puf_b);
  crypto::ChaChaDrbg rng_a(crypto::bytes_of("e")), rng_b(crypto::bytes_of("e"));
  manager_a.enroll(rng_a);
  manager_b.enroll(rng_b);
  EXPECT_FALSE(
      common::ct_equal(manager_a.enrolled_root(), manager_b.enrolled_root()));
}

TEST(KeyManager, HelperDataFromOtherDeviceFails) {
  puf::SramPufConfig cfg;
  cfg.cells = 1024;
  puf::SramPuf puf_a(cfg, 1), puf_b(cfg, 2);
  KeyManager manager_a(puf_a), manager_b(puf_b);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e"));
  const auto record_a = manager_a.enroll(rng);
  // Device B trying to reproduce with A's helper data: either a decode
  // failure or a key different from A's.
  const auto stolen = manager_b.derive(record_a);
  if (stolen) {
    EXPECT_FALSE(common::ct_equal(
        stolen->encryption_key, manager_a.derive(record_a)->encryption_key));
  }
}

TEST(CollectResponseBits, WeakPufTooShortThrows) {
  puf::SramPufConfig cfg;
  cfg.cells = 64;
  puf::SramPuf tiny(cfg, 1);
  EXPECT_THROW(collect_response_bits(tiny, 1000), std::invalid_argument);
}

TEST(CollectResponseBits, StrongPufExactCount) {
  puf::PhotonicPuf p(puf::small_photonic_config(), 91, 3);
  const auto bits = collect_response_bits(p, 100);
  EXPECT_EQ(bits.size(), 100u);
}

}  // namespace
}  // namespace neuropuls::core
