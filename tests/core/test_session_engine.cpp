// SessionEngine (ctest label: concurrency): the multiplexed verifier
// engine must be a pure scheduling transform — K sessions run
// concurrently produce byte-identical per-session transcripts and
// reports to the same K sessions run serially through SessionDriver,
// clean links and faulty links alike. Sessions share no mutable state,
// so these tests are also the TSan probe for the engine's wave scheduler
// (`scripts/check.sh tsan`).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/secret.hpp"
#include "core/session_engine.hpp"
#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "faults/faulty_channel.hpp"
#include "net/message.hpp"
#include "puf/arbiter_puf.hpp"

namespace neuropuls {
namespace {

using core::AuthSessionMachine;
using core::RetryPolicy;
using core::SessionDriver;
using core::SessionEngine;
using core::SessionEngineConfig;
using core::SessionReport;
using core::SessionResult;
using net::Direction;
using net::DuplexChannel;

// One verifier/device pairing with its own channel and (optionally) its
// own seeded fault layer — the per-session world both runners step.
struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  DuplexChannel channel;
  std::unique_ptr<faults::FaultyChannel> faulty;
};

std::unique_ptr<AuthFixture> make_auth_fixture(std::uint64_t device_seed,
                                               double drop_rate,
                                               std::uint64_t fault_seed) {
  auto f = std::make_unique<AuthFixture>();
  f->puf = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{},
                                             device_seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("engine-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("engine firmware image");
  f->device = std::make_unique<core::AuthDevice>(
      *f->puf, provisioned.device_crp, memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  if (drop_rate > 0.0) {
    f->faulty = std::make_unique<faults::FaultyChannel>(
        f->channel, faults::symmetric_faults(faults::symmetric_drop(drop_rate)),
        fault_seed);
  }
  return f;
}

crypto::Bytes serialize_transcript(const DuplexChannel& channel) {
  crypto::Bytes out;
  for (const auto& entry : channel.transcript()) {
    out.push_back(entry.direction == Direction::kAtoB ? 0 : 1);
    out.push_back(entry.delivered ? 1 : 0);
    const auto wire = net::encode_message(entry.message);
    crypto::append_u32_be(out, static_cast<std::uint32_t>(wire.size()));
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

bool reports_equal(const SessionReport& a, const SessionReport& b) {
  return a.result == b.result && a.attempts == b.attempts &&
         a.poll_ticks == b.poll_ticks && a.backoff_ticks == b.backoff_ticks &&
         a.discarded_frames == b.discarded_frames &&
         a.last_auth_status == b.last_auth_status;
}

// Runs K auth sessions serially (one SessionDriver per session, seeded
// per session) and returns per-session transcripts + reports.
void run_serial(std::size_t sessions, double drop_rate,
                std::vector<crypto::Bytes>& transcripts,
                std::vector<SessionReport>& reports) {
  for (std::size_t k = 0; k < sessions; ++k) {
    auto f = make_auth_fixture(1000 + k, drop_rate, 0xF00 + k);
    RetryPolicy policy;
    policy.seed = 100 + k;
    SessionDriver driver(f->channel, policy);
    reports.push_back(
        driver.run_mutual_auth(*f->verifier, *f->device, 10 * (k + 1)));
    transcripts.push_back(serialize_transcript(f->channel));
  }
}

// Runs the same K sessions through the engine with the given in-flight
// width, thread count, and scheduler mode (reactor by default — the
// byte-identity assertions below are thereby the reactor's determinism
// contract; kDeterministic pins the legacy wave scheduler to the same
// contract).
void run_engine(std::size_t sessions, double drop_rate, std::size_t in_flight,
                std::size_t threads,
                std::vector<crypto::Bytes>& transcripts,
                std::vector<SessionReport>& reports,
                core::EngineMode mode = core::EngineMode::kReactor) {
  std::vector<std::unique_ptr<AuthFixture>> fixtures;
  for (std::size_t k = 0; k < sessions; ++k) {
    fixtures.push_back(make_auth_fixture(1000 + k, drop_rate, 0xF00 + k));
  }
  common::ThreadPool pool(threads);
  SessionEngineConfig config;
  config.max_in_flight = in_flight;
  config.mode = mode;
  SessionEngine engine(pool, config);
  const RetryPolicy policy;  // seed overridden per session via submit()
  for (std::size_t k = 0; k < sessions; ++k) {
    AuthFixture& f = *fixtures[k];
    engine.submit(100 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }
  reports = engine.run();
  for (const auto& fixture : fixtures) {
    transcripts.push_back(serialize_transcript(fixture->channel));
  }
}

TEST(SessionEngineConcurrency, CleanLinkMatchesSerialByteForByte) {
  constexpr std::size_t kSessions = 8;
  std::vector<crypto::Bytes> serial_t, engine_t;
  std::vector<SessionReport> serial_r, engine_r;
  run_serial(kSessions, 0.0, serial_t, serial_r);
  run_engine(kSessions, 0.0, /*in_flight=*/kSessions, /*threads=*/2,
             engine_t, engine_r);
  ASSERT_EQ(engine_r.size(), kSessions);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(serial_t[k], engine_t[k]) << "session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], engine_r[k])) << "session " << k;
    EXPECT_EQ(engine_r[k].result, SessionResult::kConverged);
  }
}

TEST(SessionEngineConcurrency, FaultyLinkMatchesSerialByteForByte) {
  constexpr std::size_t kSessions = 8;
  constexpr double kDrop = 0.10;
  std::vector<crypto::Bytes> serial_t, engine_t;
  std::vector<SessionReport> serial_r, engine_r;
  run_serial(kSessions, kDrop, serial_t, serial_r);
  run_engine(kSessions, kDrop, /*in_flight=*/4, /*threads=*/2,
             engine_t, engine_r);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(serial_t[k], engine_t[k]) << "session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], engine_r[k])) << "session " << k;
  }
}

TEST(SessionEngineConcurrency, ScheduleShapeCannotChangeResults) {
  constexpr std::size_t kSessions = 6;
  constexpr double kDrop = 0.15;
  std::vector<crypto::Bytes> base_t;
  std::vector<SessionReport> base_r;
  run_engine(kSessions, kDrop, /*in_flight=*/1, /*threads=*/1, base_t, base_r);
  // Sweep scheduler shapes: in-flight width and pool width must be
  // invisible in every per-session byte.
  for (const std::size_t in_flight : {2u, 3u, 6u}) {
    for (const std::size_t threads : {1u, 4u}) {
      std::vector<crypto::Bytes> t;
      std::vector<SessionReport> r;
      run_engine(kSessions, kDrop, in_flight, threads, t, r);
      for (std::size_t k = 0; k < kSessions; ++k) {
        EXPECT_EQ(base_t[k], t[k])
            << "session " << k << " in_flight " << in_flight << " threads "
            << threads;
        EXPECT_TRUE(reports_equal(base_r[k], r[k])) << "session " << k;
      }
    }
  }
}

// The wave scheduler (deterministic mode) and the reactor must both be
// invisible scheduling transforms: serial, wave, and reactor runs agree
// byte-for-byte over the same faulty links.
TEST(SessionEngineConcurrency, WaveModeMatchesReactorAndSerial) {
  constexpr std::size_t kSessions = 8;
  constexpr double kDrop = 0.10;
  std::vector<crypto::Bytes> serial_t, wave_t, reactor_t;
  std::vector<SessionReport> serial_r, wave_r, reactor_r;
  run_serial(kSessions, kDrop, serial_t, serial_r);
  run_engine(kSessions, kDrop, /*in_flight=*/4, /*threads=*/2, wave_t, wave_r,
             core::EngineMode::kDeterministic);
  run_engine(kSessions, kDrop, /*in_flight=*/4, /*threads=*/2, reactor_t,
             reactor_r, core::EngineMode::kReactor);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(serial_t[k], wave_t[k]) << "wave session " << k;
    EXPECT_EQ(serial_t[k], reactor_t[k]) << "reactor session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], wave_r[k])) << "session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], reactor_r[k])) << "session " << k;
  }
}

// The reactor's scheduling machinery must actually engage (steps counted,
// sessions parked on the wheel and revived by its virtual clock) without
// affecting results. park_threshold = 1 parks on every wait so the wheel
// path is guaranteed to run even for short backoffs.
TEST(SessionEngineConcurrency, ReactorStatsAccountForScheduling) {
  constexpr std::size_t kSessions = 8;
  constexpr double kDrop = 0.20;
  std::vector<std::unique_ptr<AuthFixture>> fixtures;
  for (std::size_t k = 0; k < kSessions; ++k) {
    fixtures.push_back(make_auth_fixture(1000 + k, kDrop, 0xF00 + k));
  }
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 4;
  config.park_threshold = 1;
  SessionEngine engine(pool, config);
  const RetryPolicy policy;
  for (std::size_t k = 0; k < kSessions; ++k) {
    AuthFixture& f = *fixtures[k];
    engine.submit(100 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }
  const auto reports = engine.run();
  ASSERT_EQ(reports.size(), kSessions);
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.completed, kSessions);
  EXPECT_GT(stats.steps, 0u);
  // drop = 0.20 forces retries, so sessions wait (park) and the wheel's
  // virtual clock must tick to revive them.
  EXPECT_GT(stats.parks, 0u);
  EXPECT_GT(stats.wheel_ticks, 0u);
  EXPECT_GT(stats.peak_queue_depth, 0u);
  // Transcripts still byte-identical to serial despite the wheel churn.
  std::vector<crypto::Bytes> serial_t;
  std::vector<SessionReport> serial_r;
  run_serial(kSessions, kDrop, serial_t, serial_r);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(serial_t[k], serialize_transcript(fixtures[k]->channel))
        << "session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], reports[k])) << "session " << k;
  }
}

TEST(SessionEngineConcurrency, AdmissionRefillsFreedSlots) {
  constexpr std::size_t kSessions = 16;
  std::vector<crypto::Bytes> transcripts;
  std::vector<SessionReport> reports;
  run_engine(kSessions, 0.0, /*in_flight=*/3, /*threads=*/2, transcripts,
             reports);
  ASSERT_EQ(reports.size(), kSessions);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(reports[k].result, SessionResult::kConverged) << "session " << k;
    EXPECT_EQ(reports[k].attempts, 1u) << "session " << k;
  }
}

// EKE through the engine: converged concurrent key exchanges produce the
// same session keys as serial runs (keys being the whole point of EKE).
TEST(SessionEngineConcurrency, EkeKeysMatchSerial) {
  const crypto::DhGroup& group = crypto::DhGroup::modp1536();
  constexpr std::size_t kSessions = 3;
  const auto make_party = [&](const char* role, std::size_t k) {
    crypto::Bytes seed = crypto::bytes_of(role);
    seed.push_back(static_cast<std::uint8_t>(k));
    return std::make_unique<core::EkeParty>(
        crypto::bytes_of("engine shared crp response"), group,
        crypto::ChaChaDrbg(seed));
  };

  std::vector<common::SecretBytes> serial_keys;
  for (std::size_t k = 0; k < kSessions; ++k) {
    auto initiator = make_party("eke-i", k);
    auto responder = make_party("eke-r", k);
    DuplexChannel channel;
    RetryPolicy policy;
    policy.seed = 500 + k;
    SessionDriver driver(channel, policy);
    const auto report = driver.run_eke(*initiator, *responder, 100 * (k + 1));
    ASSERT_EQ(report.result, SessionResult::kConverged);
    serial_keys.push_back(initiator->session_key().clone());
  }

  struct EkeFixture {
    std::unique_ptr<core::EkeParty> initiator;
    std::unique_ptr<core::EkeParty> responder;
    DuplexChannel channel;
  };
  std::vector<std::unique_ptr<EkeFixture>> fixtures;
  for (std::size_t k = 0; k < kSessions; ++k) {
    auto f = std::make_unique<EkeFixture>();
    f->initiator = make_party("eke-i", k);
    f->responder = make_party("eke-r", k);
    fixtures.push_back(std::move(f));
  }
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = kSessions;
  SessionEngine engine(pool, config);
  const RetryPolicy policy;
  for (std::size_t k = 0; k < kSessions; ++k) {
    EkeFixture& f = *fixtures[k];
    engine.submit(500 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<core::EkeSessionMachine>(
          f.channel, policy, rng, *f.initiator, *f.responder, 100 * (k + 1));
    });
  }
  const auto reports = engine.run();
  EXPECT_EQ(engine.stats().completed, kSessions);
  EXPECT_EQ(engine.stats().converged, kSessions);
  for (std::size_t k = 0; k < kSessions; ++k) {
    ASSERT_EQ(reports[k].result, SessionResult::kConverged);
    EXPECT_TRUE(common::ct_equal(fixtures[k]->initiator->session_key(),
                                 fixtures[k]->responder->session_key()));
    EXPECT_TRUE(common::ct_equal(fixtures[k]->initiator->session_key(),
                                 serial_keys[k]));
  }
}

TEST(SessionEngineConcurrency, NotifyOutsideRunIsANoOp) {
  // notify() is the only engine entry point legal outside run(): with no
  // run active (active_ == nullptr) or an out-of-range index it must do
  // nothing at all — before the first run, after the last, either way.
  common::ThreadPool pool(2);
  SessionEngine engine(pool, SessionEngineConfig{});
  engine.notify(0);
  engine.notify(12345);

  auto f = make_auth_fixture(1000, 0.0, 0);
  const RetryPolicy policy;
  engine.submit(100, [&f, &policy](crypto::ChaChaDrbg& rng) {
    return std::make_unique<AuthSessionMachine>(f->channel, policy, rng,
                                                *f->verifier, *f->device, 10);
  });
  const auto reports = engine.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].result, SessionResult::kConverged);

  const auto before = engine.stats();
  engine.notify(0);    // session retired and the run is over
  engine.notify(999);  // never existed
  const auto after = engine.stats();
  EXPECT_EQ(after.wakeups, before.wakeups);
  EXPECT_EQ(after.completed, before.completed);
}

TEST(SessionEngineConcurrency, NotifyStormOnDeadIndicesIsHarmless) {
  // Hammer notify() mid-run on indices that must never be woken: the
  // session that just completed (retired — not parked, so no requeue),
  // a far-future index the admission gate has not released yet, and an
  // out-of-range one. None of this may requeue retired sessions, inflate
  // the wakeup count past the park count, or perturb per-session
  // results — the byte-identity contract holds through the storm.
  constexpr std::size_t kSessions = 8;
  constexpr double kDrop = 0.20;
  std::vector<std::unique_ptr<AuthFixture>> fixtures;
  for (std::size_t k = 0; k < kSessions; ++k) {
    fixtures.push_back(make_auth_fixture(1000 + k, kDrop, 0xF00 + k));
  }
  common::ThreadPool pool(2);
  SessionEngine* eng = nullptr;
  SessionEngineConfig config;
  config.max_in_flight = 2;  // most sessions are never-admitted for a while
  config.park_threshold = 1;
  config.on_complete = [&eng](std::size_t index) {
    for (int i = 0; i < 50; ++i) eng->notify(index);  // already completed
    eng->notify(kSessions - 1);  // likely still behind the admission gate
    eng->notify(kSessions + 100);  // out of range
  };
  SessionEngine engine(pool, config);
  eng = &engine;
  const RetryPolicy policy;
  for (std::size_t k = 0; k < kSessions; ++k) {
    AuthFixture& f = *fixtures[k];
    engine.submit(100 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }
  const auto reports = engine.run();
  ASSERT_EQ(reports.size(), kSessions);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, kSessions);
  // Every real wakeup revives a park; a storm of spurious notifies on
  // retired sessions adds parks' worth of wakeups at most, never 50×.
  EXPECT_LE(stats.wakeups, stats.parks);

  std::vector<crypto::Bytes> serial_t;
  std::vector<SessionReport> serial_r;
  run_serial(kSessions, kDrop, serial_t, serial_r);
  for (std::size_t k = 0; k < kSessions; ++k) {
    EXPECT_EQ(serial_t[k], serialize_transcript(fixtures[k]->channel))
        << "session " << k;
    EXPECT_TRUE(reports_equal(serial_r[k], reports[k])) << "session " << k;
  }
}

}  // namespace
}  // namespace neuropuls
