// Protocol property sweeps: the mutual-authentication state machine must
// stay consistent under every single-message-loss pattern and across long
// session chains; EKE must agree under both groups and arbitrary secret
// lengths.
#include <gtest/gtest.h>

#include "core/aka_eke.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::core {
namespace {

struct AuthWorld {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<AuthDevice> device;
  std::unique_ptr<AuthVerifier> verifier;
  std::unique_ptr<net::DuplexChannel> channel;
};

AuthWorld make_world(std::uint64_t seed) {
  AuthWorld w;
  w.channel = std::make_unique<net::DuplexChannel>();
  w.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(),
                                             9000 + seed, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("prop-prov"));
  const auto provisioned = provision(*w.puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("fw");
  w.device =
      std::make_unique<AuthDevice>(*w.puf, provisioned.device_crp, memory);
  w.verifier = std::make_unique<AuthVerifier>(provisioned.verifier_secret,
                                              crypto::Sha256::hash(memory),
                                              w.puf->challenge_bytes());
  return w;
}

// Which of the three protocol messages the adversary drops.
class SingleLoss : public ::testing::TestWithParam<net::MessageType> {};

TEST_P(SingleLoss, OneLossNeverBreaksTheNextSession) {
  AuthWorld w = make_world(1);
  const net::MessageType victim = GetParam();
  w.channel->set_adversary([victim](net::Direction, const net::Message& m) {
    return m.type == victim ? net::Verdict::drop() : net::Verdict::pass();
  });
  // The lossy session fails...
  EXPECT_FALSE(run_auth_session(*w.verifier, *w.device, *w.channel, 1, 0x01));
  // ...but an honest follow-up always succeeds, for every loss position.
  w.channel->set_adversary(nullptr);
  EXPECT_TRUE(run_auth_session(*w.verifier, *w.device, *w.channel, 2, 0x02));
  EXPECT_TRUE(common::ct_equal(w.device->current_response(),
                               w.verifier->current_secret()));
}

INSTANTIATE_TEST_SUITE_P(
    LossPositions, SingleLoss,
    ::testing::Values(net::MessageType::kAuthRequest,
                      net::MessageType::kAuthResponse,
                      net::MessageType::kAuthConfirm),
    [](const ::testing::TestParamInfo<net::MessageType>& info) {
      return net::message_type_name(info.param).substr(5);  // strip "auth-"
    });

// Long chains with interleaved random losses must never wedge the pair.
class LossyChains : public ::testing::TestWithParam<unsigned> {};

TEST_P(LossyChains, AlwaysRecoverable) {
  AuthWorld w = make_world(GetParam());
  rng::Xoshiro256 rng(GetParam());
  std::uint64_t session = 0;
  int successes = 0;
  for (int round = 0; round < 20; ++round) {
    const bool lossy = rng.bernoulli(0.4);
    if (lossy) {
      const int which = static_cast<int>(rng.uniform_int(3));
      w.channel->set_adversary([which](net::Direction, const net::Message& m) {
        const bool drop =
            (which == 0 && m.type == net::MessageType::kAuthRequest) ||
            (which == 1 && m.type == net::MessageType::kAuthResponse) ||
            (which == 2 && m.type == net::MessageType::kAuthConfirm);
        return drop ? net::Verdict::drop() : net::Verdict::pass();
      });
    } else {
      w.channel->set_adversary(nullptr);
    }
    ++session;
    successes +=
        run_auth_session(*w.verifier, *w.device, *w.channel, session, session);
  }
  // Every lossless round after the first must succeed; final honest round
  // proves no permanent wedge.
  w.channel->set_adversary(nullptr);
  ++session;
  EXPECT_TRUE(
      run_auth_session(*w.verifier, *w.device, *w.channel, session, session));
  EXPECT_GT(successes, 0);
  EXPECT_TRUE(common::ct_equal(w.device->current_response(),
                               w.verifier->current_secret()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyChains, ::testing::Values(1u, 2u, 3u, 4u));

// Sessions compose: N consecutive honest sessions all succeed and every
// rotated secret is fresh.
class SessionChains : public ::testing::TestWithParam<int> {};

TEST_P(SessionChains, AllSucceedAllFresh) {
  AuthWorld w = make_world(50);
  std::vector<puf::Response> secrets;
  for (int i = 1; i <= GetParam(); ++i) {
    ASSERT_TRUE(run_auth_session(*w.verifier, *w.device, *w.channel,
                                 static_cast<std::uint64_t>(i),
                                 static_cast<std::uint64_t>(i) * 31));
    const auto view = w.verifier->current_secret().reveal();
    secrets.push_back(puf::Response(view.begin(), view.end()));
  }
  for (std::size_t a = 0; a < secrets.size(); ++a) {
    for (std::size_t b = a + 1; b < secrets.size(); ++b) {
      EXPECT_NE(secrets[a], secrets[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SessionChains, ::testing::Values(2, 5, 10));

// ---- EKE sweeps ------------------------------------------------------------------

struct EkeCase {
  std::size_t secret_len;
  bool big_group;
};

class EkeSweep : public ::testing::TestWithParam<EkeCase> {};

TEST_P(EkeSweep, AgreementAcrossSecretLengthsAndGroups) {
  const auto& group = GetParam().big_group ? crypto::DhGroup::modp2048()
                                           : crypto::DhGroup::modp1536();
  crypto::Bytes secret(GetParam().secret_len, 0x42);
  secret.back() = 0x17;
  const auto outcome = run_eke_handshake(secret, secret, group, 9, 1234);
  EXPECT_TRUE(outcome.keys_match);
  EXPECT_EQ(outcome.initiator.session_key.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EkeSweep,
    ::testing::Values(EkeCase{1, false}, EkeCase{4, false}, EkeCase{32, false},
                      EkeCase{255, false}, EkeCase{32, true}),
    [](const ::testing::TestParamInfo<EkeCase>& info) {
      return "len" + std::to_string(info.param.secret_len) +
             (info.param.big_group ? "_g2048" : "_g1536");
    });

}  // namespace
}  // namespace neuropuls::core
