// Zero-allocation invariants of the reactor's steady state (ctest label:
// concurrency).
//
// The reactor promises that once a session is admitted, the waiting
// machinery — polling an expect budget down, pushing/popping run queues,
// parking on the timer wheel and being revived by its virtual clock —
// touches no heap. This binary installs the counting allocator
// (common/alloc_probe.hpp) and pins that promise two ways:
//
//   * machine level: a SessionMachine waiting on a silent, non-pollable
//     channel must burn poll budget with literally zero allocations per
//     step();
//   * engine level: two reactor runs that differ only in how LONG their
//     sessions wait (receive_poll_budget 8 vs 72) must allocate exactly
//     the same number of times — every extra waiting step, park, and
//     wheel tick is heap-free. The budgets straddle the wheel's 64-slot
//     level-0 horizon, so both wheel levels are exercised.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "common/alloc_probe.hpp"
#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "net/channel.hpp"
#include "puf/arbiter_puf.hpp"

NEUROPULS_DEFINE_ALLOC_PROBE()

namespace neuropuls {
namespace {

using common::alloc_probe::allocations;
using core::AuthSessionMachine;
using core::RetryPolicy;
using core::SessionEngine;
using core::SessionEngineConfig;
using core::SessionResult;

// The probe itself must be live in this binary, or the zero-alloc
// assertions below would pass vacuously.
TEST(AllocProbe, CountsThisBinarysAllocations) {
  const auto before = allocations();
  auto p = std::make_unique<int>(42);
  const auto after = allocations();
  ASSERT_NE(p, nullptr);
  EXPECT_GT(after, before);
}

struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  net::DuplexChannel channel;
};

// Drop-all link: every send is swallowed, nothing ever becomes readable,
// and no poll hook is installed — the channel is non-pollable, so every
// remaining poll of an expect budget is pure waiting.
std::unique_ptr<AuthFixture> make_silent_fixture(std::uint64_t seed) {
  auto f = std::make_unique<AuthFixture>();
  f->puf = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("alloc-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("alloc firmware");
  f->device = std::make_unique<core::AuthDevice>(*f->puf,
                                                 provisioned.device_crp, memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  f->channel.set_adversary(
      [](net::Direction, const net::Message&) { return net::Verdict::drop(); });
  return f;
}

TEST(ReactorZeroAlloc, WaitingStepsAllocateNothing) {
  auto f = make_silent_fixture(7000);
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.receive_poll_budget = 64;
  crypto::ChaChaDrbg rng(core::session_driver_seed_bytes(9));
  AuthSessionMachine machine(f->channel, policy, rng, *f->verifier, *f->device,
                             10);
  // Step 1 opens the attempt: it sends (and the adversary drops) the
  // first frame — sends may allocate, that's not steady state.
  ASSERT_TRUE(machine.step());
  ASSERT_GT(machine.wait_hint(), 0u);
  // Steps 2..33 poll an empty, non-pollable channel against the expect
  // budget. This is the steady state the reactor schedules around, and
  // it must be allocation-free.
  const auto before = allocations();
  bool running = true;
  for (int i = 0; i < 32 && running; ++i) running = machine.step();
  const auto after = allocations();
  EXPECT_TRUE(running);
  EXPECT_EQ(after, before);
}

// One engine run over a silent link with the given receive budget,
// returning how many allocations the calling thread observed across
// run(). ThreadPool(1) keeps the reactor on the calling thread (serial
// fallback), so the thread-local counter sees every allocation the
// scheduler makes — queue churn, parks, wheel ticks included.
std::uint64_t count_run_allocations(std::size_t receive_poll_budget) {
  auto f = make_silent_fixture(7001);
  common::ThreadPool pool(1);
  SessionEngineConfig config;
  config.max_in_flight = 1;
  config.park_threshold = 2;
  SessionEngine engine(pool, config);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.receive_poll_budget = receive_poll_budget;
  AuthFixture& fixture = *f;
  engine.submit(900, [&fixture, policy](crypto::ChaChaDrbg& rng) {
    return std::make_unique<AuthSessionMachine>(
        fixture.channel, policy, rng, *fixture.verifier, *fixture.device, 10);
  });
  const auto before = allocations();
  const auto reports = engine.run();
  const auto after = allocations();
  EXPECT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].result, SessionResult::kExhausted);
  EXPECT_GT(engine.stats().parks, 0u);
  EXPECT_GT(engine.stats().wheel_ticks, 0u);
  return after - before;
}

TEST(ReactorZeroAlloc, LongerWaitsAllocateNoMoreThanShortOnes) {
  // Identical runs except the session waits 9x longer before each retry:
  // same sends, same DRBG draws, same attempt count — the only delta is
  // waiting steps, parks, and wheel ticks. Budget 8 parks land in the
  // wheel's 64-slot level-0; budget 72 overflows into level-1. If any of
  // that machinery allocated, the counts would differ.
  const std::uint64_t short_waits = count_run_allocations(8);
  const std::uint64_t long_waits = count_run_allocations(72);
  EXPECT_EQ(short_waits, long_waits);
}

}  // namespace
}  // namespace neuropuls
