// Field-arithmetic and BCH codec tests, including exhaustive small-field
// identities and randomized error-injection sweeps up to and beyond the
// design correction radius.
#include <gtest/gtest.h>

#include "crypto/prng.hpp"
#include "ecc/bch.hpp"
#include "ecc/gf2m.hpp"

namespace neuropuls::ecc {
namespace {

TEST(Gf2m, RejectsBadDegree) {
  EXPECT_THROW(Gf2m(1), std::invalid_argument);
  EXPECT_THROW(Gf2m(17), std::invalid_argument);
}

TEST(Gf2m, MultiplicativeGroupOrder) {
  for (unsigned m : {3u, 4u, 8u}) {
    Gf2m field(m);
    // alpha^n == alpha^0 == 1.
    EXPECT_EQ(field.alpha_pow(field.n()), 1u) << "m=" << m;
    // alpha is a generator: powers 0..n-1 are distinct.
    std::vector<bool> seen(field.n() + 1, false);
    for (std::uint32_t i = 0; i < field.n(); ++i) {
      const auto v = field.alpha_pow(i);
      EXPECT_FALSE(seen[v]) << "repeat at exponent " << i;
      seen[v] = true;
    }
  }
}

TEST(Gf2m, FieldAxiomsExhaustiveGf16) {
  Gf2m field(4);
  for (std::uint32_t a = 1; a <= field.n(); ++a) {
    EXPECT_EQ(field.mul(a, field.inv(a)), 1u);
    EXPECT_EQ(field.mul(a, 1), a);
    EXPECT_EQ(field.mul(a, 0), 0u);
    for (std::uint32_t b = 1; b <= field.n(); ++b) {
      EXPECT_EQ(field.mul(a, b), field.mul(b, a));
      EXPECT_EQ(field.div(field.mul(a, b), b), a);
    }
  }
}

TEST(Gf2m, PowMatchesRepeatedMul) {
  Gf2m field(8);
  std::uint32_t acc = 1;
  const std::uint32_t base = 0x53;
  for (std::uint32_t e = 0; e < 20; ++e) {
    EXPECT_EQ(field.pow(base, e), acc);
    acc = field.mul(acc, base);
  }
  EXPECT_EQ(field.pow(0, 0), 1u);
  EXPECT_EQ(field.pow(0, 5), 0u);
}

TEST(Bch, ParametersKnownCodes) {
  // Classic parameter table entries.
  const BchCode c15_1(4, 1);
  EXPECT_EQ(c15_1.n(), 15u);
  EXPECT_EQ(c15_1.k(), 11u);
  const BchCode c15_3(4, 3);
  EXPECT_EQ(c15_3.k(), 5u);
  const BchCode c127_10(7, 10);
  EXPECT_EQ(c127_10.n(), 127u);
  EXPECT_EQ(c127_10.k(), 64u);
  const BchCode c255_8(8, 8);
  EXPECT_EQ(c255_8.n(), 255u);
  EXPECT_EQ(c255_8.k(), 191u);
}

TEST(Bch, RejectsBadParameters) {
  EXPECT_THROW(BchCode(4, 0), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 8), std::invalid_argument);
}

TEST(Bch, EncodeIsSystematic) {
  const BchCode code(4, 2);  // (15, 7, t=2)
  BitVec msg(code.k(), 0);
  msg[0] = 1;
  msg[3] = 1;
  const BitVec cw = code.encode(msg);
  EXPECT_EQ(code.extract_message(cw), msg);
}

TEST(Bch, CodewordDivisibleByGenerator) {
  const BchCode code(5, 3);
  rng::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec msg(code.k());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    BitVec cw = code.encode(msg);
    // Long-divide the codeword by g(x); remainder must be zero.
    const BitVec& g = code.generator();
    for (std::size_t i = cw.size(); i-- > 0;) {
      if (i + 1 < g.size()) break;
      if (!cw[i]) continue;
      const std::size_t shift = i - (g.size() - 1);
      for (std::size_t j = 0; j < g.size(); ++j) cw[shift + j] ^= g[j];
    }
    for (std::uint8_t bit : cw) EXPECT_EQ(bit, 0);
  }
}

TEST(Bch, NoErrorsDecodesIdentically) {
  const BchCode code(6, 4);
  rng::Xoshiro256 rng(12);
  BitVec msg(code.k());
  for (auto& b : msg) b = rng.coin() ? 1 : 0;
  const BitVec cw = code.encode(msg);
  const auto decoded = code.decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cw);
}

class BchErrorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BchErrorSweep, CorrectsUpToTErrors) {
  const unsigned t = 5;
  const BchCode code(7, t);  // (127, 85? no: k from table)
  const unsigned errors = GetParam();
  rng::Xoshiro256 rng(100 + errors);
  for (int trial = 0; trial < 25; ++trial) {
    BitVec msg(code.k());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    const BitVec cw = code.encode(msg);
    BitVec noisy = cw;
    // Inject exactly `errors` distinct flips.
    std::vector<std::size_t> positions;
    while (positions.size() < errors) {
      const std::size_t p = rng.uniform_int(code.n());
      bool dup = false;
      for (auto q : positions) dup |= (q == p);
      if (!dup) positions.push_back(p);
    }
    for (auto p : positions) noisy[p] ^= 1;

    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value())
        << errors << " errors, trial " << trial;
    EXPECT_EQ(*decoded, cw);
    EXPECT_EQ(code.extract_message(*decoded), msg);
  }
}

INSTANTIATE_TEST_SUITE_P(UpToRadius, BchErrorSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(Bch, BeyondRadiusNeverSilentlyWrong) {
  // With > t errors the decoder may fail (nullopt) or may land on a
  // *different valid codeword* (miscorrection — information-theoretically
  // unavoidable); what it must never do is return a non-codeword or the
  // original with residual errors. We check: if it returns, the result is
  // a codeword.
  const unsigned t = 3;
  const BchCode code(5, t);  // (31, 16)
  rng::Xoshiro256 rng(77);
  int returned = 0, failed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    BitVec msg(code.k());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    const BitVec cw = code.encode(msg);
    BitVec noisy = cw;
    for (unsigned e = 0; e < t + 2; ++e) {
      noisy[rng.uniform_int(code.n())] ^= 1;
    }
    const auto decoded = code.decode(noisy);
    if (!decoded) {
      ++failed;
      continue;
    }
    ++returned;
    // Whatever came back must itself re-encode consistently (i.e., be a
    // valid codeword): re-encoding its message must reproduce it.
    EXPECT_EQ(code.encode(code.extract_message(*decoded)), *decoded);
  }
  // Both outcomes should occur over 200 trials.
  EXPECT_GT(failed + returned, 0);
}

TEST(Bch, WrongLengthThrows) {
  const BchCode code(4, 2);
  EXPECT_THROW(code.encode(BitVec(3, 0)), std::invalid_argument);
  EXPECT_THROW(code.decode(BitVec(14, 0)), std::invalid_argument);
  EXPECT_THROW(code.extract_message(BitVec(3, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::ecc
