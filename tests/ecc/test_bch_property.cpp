// Property sweep over the BCH parameter grid: for every (m, t) pair the
// code must construct, be systematic, divide by its generator, correct
// exactly up to t random errors, and expose consistent dimensions.
#include <gtest/gtest.h>

#include "crypto/prng.hpp"
#include "ecc/repetition.hpp"

namespace neuropuls::ecc {
namespace {

struct BchParams {
  unsigned m;
  unsigned t;
  std::size_t expected_k;  // from the standard BCH tables
};

class BchGrid : public ::testing::TestWithParam<BchParams> {};

TEST_P(BchGrid, DimensionsMatchTables) {
  const auto p = GetParam();
  const BchCode code(p.m, p.t);
  EXPECT_EQ(code.n(), (1u << p.m) - 1);
  EXPECT_EQ(code.k(), p.expected_k);
  EXPECT_EQ(code.generator().size() - 1, code.n() - code.k());
}

TEST_P(BchGrid, RoundTripWithoutErrors) {
  const auto p = GetParam();
  const BchCode code(p.m, p.t);
  rng::Xoshiro256 rng(p.m * 1000 + p.t);
  for (int trial = 0; trial < 5; ++trial) {
    BitVec msg(code.k());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    const BitVec cw = code.encode(msg);
    EXPECT_EQ(code.extract_message(cw), msg);
    const auto decoded = code.decode(cw);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, cw);
  }
}

TEST_P(BchGrid, CorrectsExactlyTErrors) {
  const auto p = GetParam();
  const BchCode code(p.m, p.t);
  rng::Xoshiro256 rng(p.m * 7777 + p.t);
  for (int trial = 0; trial < 10; ++trial) {
    BitVec msg(code.k());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    const BitVec cw = code.encode(msg);
    BitVec noisy = cw;
    // Exactly t distinct error positions.
    std::vector<std::size_t> positions;
    while (positions.size() < p.t) {
      const std::size_t pos = rng.uniform_int(code.n());
      bool dup = false;
      for (auto q : positions) dup |= (q == pos);
      if (!dup) positions.push_back(pos);
    }
    for (auto pos : positions) noisy[pos] ^= 1;
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value())
        << "m=" << p.m << " t=" << p.t << " trial=" << trial;
    EXPECT_EQ(*decoded, cw);
  }
}

TEST_P(BchGrid, SystematicEverywhere) {
  const auto p = GetParam();
  const BchCode code(p.m, p.t);
  // Each unit-vector message appears verbatim in the high coefficients.
  for (std::size_t i = 0; i < std::min<std::size_t>(code.k(), 8); ++i) {
    BitVec msg(code.k(), 0);
    msg[i] = 1;
    EXPECT_EQ(code.extract_message(code.encode(msg)), msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StandardCodes, BchGrid,
    ::testing::Values(BchParams{4, 1, 11}, BchParams{4, 2, 7},
                      BchParams{4, 3, 5}, BchParams{5, 1, 26},
                      BchParams{5, 3, 16}, BchParams{5, 5, 11},
                      BchParams{6, 2, 51}, BchParams{6, 6, 30},
                      BchParams{7, 4, 99}, BchParams{7, 10, 64},
                      BchParams{8, 8, 191}),
    [](const ::testing::TestParamInfo<BchParams>& info) {
      return "m" + std::to_string(info.param.m) + "_t" +
             std::to_string(info.param.t);
    });

// Repetition + concatenated sweep over repetition factors.
class RepetitionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RepetitionSweep, MajorityCorrectsBelowHalf) {
  const unsigned r = GetParam();
  const RepetitionCode code(r);
  rng::Xoshiro256 rng(r);
  BitVec msg(32);
  for (auto& b : msg) b = rng.coin() ? 1 : 0;
  BitVec cw = code.encode(msg);
  // Flip floor(r/2) copies of every bit: still decodable.
  for (std::size_t bit = 0; bit < msg.size(); ++bit) {
    for (unsigned e = 0; e < r / 2; ++e) {
      cw[bit * r + e] ^= 1;
    }
  }
  EXPECT_EQ(code.decode(cw), msg);
}

TEST_P(RepetitionSweep, ConcatenatedRadius) {
  const unsigned r = GetParam();
  const ConcatenatedCode code(BchCode(5, 3), RepetitionCode(r));
  EXPECT_EQ(code.codeword_bits(), 31u * r);
  EXPECT_EQ(code.message_bits(), 16u);
  rng::Xoshiro256 rng(100 + r);
  BitVec msg(code.message_bits());
  for (auto& b : msg) b = rng.coin() ? 1 : 0;
  const auto decoded = code.decode(code.encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

INSTANTIATE_TEST_SUITE_P(OddFactors, RepetitionSweep,
                         ::testing::Values(1u, 3u, 5u, 7u, 9u));

}  // namespace
}  // namespace neuropuls::ecc
