// Repetition/concatenated-code and fuzzy-extractor tests: key stability
// under noise, helper-data non-secrecy, and failure beyond the radius.
#include <gtest/gtest.h>

#include "crypto/prng.hpp"
#include "ecc/fuzzy_extractor.hpp"

namespace neuropuls::ecc {
namespace {

TEST(BitVecPacking, RoundTrip) {
  const BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  const auto packed = pack_bits(bits);
  EXPECT_EQ(packed.size(), 2u);
  EXPECT_EQ(unpack_bits(packed, bits.size()), bits);
}

TEST(BitVecPacking, MsbFirstLayout) {
  const BitVec bits = {1, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(pack_bits(bits), (crypto::Bytes{0x81}));
}

TEST(BitVecPacking, TooSmallBufferThrows) {
  EXPECT_THROW(unpack_bits(crypto::Bytes{0xff}, 9), std::invalid_argument);
}

TEST(Repetition, RejectsEvenR) {
  EXPECT_THROW(RepetitionCode(2), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(0), std::invalid_argument);
}

TEST(Repetition, MajorityCorrectsMinorityFlips) {
  const RepetitionCode code(5);
  const BitVec msg = {1, 0, 1};
  BitVec cw = code.encode(msg);
  ASSERT_EQ(cw.size(), 15u);
  // Flip 2 of the 5 copies of each bit — still decodable.
  cw[0] ^= 1; cw[1] ^= 1;
  cw[5] ^= 1; cw[9] ^= 1;
  cw[10] ^= 1; cw[14] ^= 1;
  EXPECT_EQ(code.decode(cw), msg);
}

TEST(Repetition, LengthMismatchThrows) {
  EXPECT_THROW(RepetitionCode(3).decode(BitVec(4, 0)), std::invalid_argument);
}

TEST(Concatenated, RoundTripNoNoise) {
  const ConcatenatedCode code(BchCode(5, 3), RepetitionCode(3));
  rng::Xoshiro256 rng(5);
  BitVec msg(code.message_bits());
  for (auto& b : msg) b = rng.coin() ? 1 : 0;
  const BitVec cw = code.encode(msg);
  EXPECT_EQ(cw.size(), code.codeword_bits());
  const auto decoded = code.decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(Concatenated, SurvivesModerateRandomNoise) {
  // BCH(31,16,t=3) ⊗ rep-3: raw BER of 5% should almost always decode.
  const ConcatenatedCode code(BchCode(5, 3), RepetitionCode(3));
  rng::Xoshiro256 rng(6);
  int successes = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    BitVec msg(code.message_bits());
    for (auto& b : msg) b = rng.coin() ? 1 : 0;
    BitVec noisy = code.encode(msg);
    for (auto& b : noisy) {
      if (rng.bernoulli(0.05)) b ^= 1;
    }
    const auto decoded = code.decode(noisy);
    if (decoded && *decoded == msg) ++successes;
  }
  EXPECT_GE(successes, 95);
}

TEST(FuzzyExtractor, KeyStableUnderNoise) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("enrollment"));
  rng::Xoshiro256 noise(42);

  // A random reference response.
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;

  const auto enrolled = fe.generate(w, drbg);
  EXPECT_EQ(enrolled.key.size(), fe.key_bytes());

  // 6% raw BER re-readings reproduce the exact same key.
  for (int reading = 0; reading < 20; ++reading) {
    BitVec w_prime = w;
    for (auto& b : w_prime) {
      if (noise.bernoulli(0.06)) b ^= 1;
    }
    const auto key = fe.reproduce(w_prime, enrolled.helper);
    ASSERT_TRUE(key.has_value()) << "reading " << reading;
    EXPECT_EQ(*key, enrolled.key);
  }
}

TEST(FuzzyExtractor, FailsBeyondRadius) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("enrollment"));
  rng::Xoshiro256 noise(43);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);

  // 40% BER is far outside the radius: reproduction must not return the
  // enrolled key (either nullopt or a decode onto a different codeword).
  int exact_matches = 0;
  for (int reading = 0; reading < 20; ++reading) {
    BitVec w_prime = w;
    for (auto& b : w_prime) {
      if (noise.bernoulli(0.40)) b ^= 1;
    }
    const auto key = fe.reproduce(w_prime, enrolled.helper);
    if (key && *key == enrolled.key) ++exact_matches;
  }
  EXPECT_EQ(exact_matches, 0);
}

TEST(FuzzyExtractor, HelperDataDoesNotDetermineKey) {
  // Two devices with different responses but helper data generated from
  // the same DRBG stream must get different keys; and the sketch alone
  // (without w) must not reproduce the key.
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("x"));
  rng::Xoshiro256 noise(44);

  BitVec w1(fe.response_bits()), w2(fe.response_bits());
  for (auto& b : w1) b = noise.coin() ? 1 : 0;
  for (auto& b : w2) b = noise.coin() ? 1 : 0;

  const auto e1 = fe.generate(w1, drbg);
  const auto e2 = fe.generate(w2, drbg);
  EXPECT_NE(e1.key, e2.key);

  // An attacker holding only the helper data guesses w as all-zeros.
  const BitVec zero(fe.response_bits(), 0);
  const auto guessed = fe.reproduce(zero, e1.helper);
  if (guessed) {
    EXPECT_NE(*guessed, e1.key);
  }
}

TEST(FuzzyExtractor, DistinctSaltsDistinctKeysSameResponse) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("y"));
  rng::Xoshiro256 noise(45);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto e1 = fe.generate(w, drbg);
  const auto e2 = fe.generate(w, drbg);
  EXPECT_NE(e1.key, e2.key);  // fresh codeword + salt each enrollment
  // But each enrollment remains individually reproducible.
  EXPECT_EQ(fe.reproduce(w, e1.helper).value(), e1.key);
  EXPECT_EQ(fe.reproduce(w, e2.helper).value(), e2.key);
}

TEST(HelperSerialization, RoundTripPreservesReproduction) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("ser"));
  rng::Xoshiro256 noise(46);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);

  const crypto::Bytes blob = serialize_helper(enrolled.helper);
  const HelperData restored = deserialize_helper(blob);
  EXPECT_EQ(restored.sketch, enrolled.helper.sketch);
  EXPECT_EQ(restored.salt, enrolled.helper.salt);
  // The restored helper reproduces the same key.
  EXPECT_EQ(fe.reproduce(w, restored).value(), enrolled.key);
}

TEST(HelperSerialization, RejectsMalformedBlobs) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("ser2"));
  BitVec w(fe.response_bits(), 1);
  const auto enrolled = fe.generate(w, drbg);
  crypto::Bytes blob = serialize_helper(enrolled.helper);

  EXPECT_THROW(deserialize_helper(crypto::Bytes(3, 0)), std::runtime_error);
  EXPECT_THROW(
      deserialize_helper(crypto::ByteView(blob).first(blob.size() - 1)),
      std::runtime_error);
  crypto::Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_helper(trailing), std::runtime_error);
  crypto::Bytes huge(8, 0xFF);  // implausible sketch size
  EXPECT_THROW(deserialize_helper(huge), std::runtime_error);
}

TEST(FuzzyExtractor, WrongSizesThrow) {
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("z"));
  EXPECT_THROW(fe.generate(BitVec(10, 0), drbg), std::invalid_argument);
  // Wrong *measurement* length is a caller bug and throws...
  HelperData ok_helper;
  ok_helper.sketch = BitVec(fe.response_bits(), 0);
  EXPECT_THROW(fe.reproduce(BitVec(10, 0), ok_helper), std::invalid_argument);
  EXPECT_THROW(
      FuzzyExtractor(ConcatenatedCode(BchCode(5, 3), RepetitionCode(3)), 0),
      std::invalid_argument);
  EXPECT_THROW(
      FuzzyExtractor(ConcatenatedCode(BchCode(5, 3), RepetitionCode(3)), 33),
      std::invalid_argument);
}

TEST(FuzzyExtractor, WrongHelperLengthRejectsCleanly) {
  // ...but a wrong-length *helper* is corrupted storage, an operational
  // fault: clean rejection, same as an uncorrectable reading.
  const FuzzyExtractor fe = make_default_extractor();
  const BitVec w_prime(fe.response_bits(), 0);
  for (const std::size_t bad_len :
       {std::size_t{0}, std::size_t{10}, fe.response_bits() - 1,
        fe.response_bits() + 1, fe.response_bits() * 2}) {
    HelperData bad;
    bad.sketch = BitVec(bad_len, 0);
    EXPECT_EQ(fe.reproduce(w_prime, bad), std::nullopt) << bad_len;
  }
}

TEST(FuzzyExtractor, BitFlippedHelperNeverYieldsEnrolledKey) {
  // Flip every sketch bit position in turn. A single flip lands within
  // the code radius, so decode recovers a *shifted* response — the
  // derived key must differ from the enrolled one (or reject); silently
  // reproducing the enrolled key from tampered helper data would defeat
  // the integrity story of the degradation layer.
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("corrupt"));
  rng::Xoshiro256 noise(47);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);

  for (std::size_t bit = 0; bit < enrolled.helper.sketch.size(); ++bit) {
    HelperData corrupted = enrolled.helper;
    corrupted.sketch[bit] ^= 1;
    const auto key = fe.reproduce(w, corrupted);
    if (key) {
      EXPECT_NE(*key, enrolled.key) << "sketch bit " << bit;
    }
  }
}

TEST(FuzzyExtractor, HeavilyCorruptedHelperRejectsOrDiverges) {
  // Multi-bit helper corruption at increasing densities: never UB, never
  // the enrolled key by accident, never a crash.
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("corrupt2"));
  rng::Xoshiro256 noise(48);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);

  for (const double rate : {0.05, 0.20, 0.50}) {
    for (int trial = 0; trial < 10; ++trial) {
      HelperData corrupted = enrolled.helper;
      for (auto& b : corrupted.sketch) {
        if (noise.bernoulli(rate)) b ^= 1;
      }
      const auto key = fe.reproduce(w, corrupted);
      if (key) {
        EXPECT_NE(*key, enrolled.key) << "rate " << rate;
      }
    }
  }
}

TEST(HelperSerialization, TruncatedBlobsThrowAtEveryCut) {
  // Every truncation point of a serialized helper must throw (clean
  // parse failure), never read out of bounds or return garbage.
  const FuzzyExtractor fe = make_default_extractor();
  crypto::ChaChaDrbg drbg(crypto::bytes_of("trunc"));
  rng::Xoshiro256 noise(49);
  BitVec w(fe.response_bits());
  for (auto& b : w) b = noise.coin() ? 1 : 0;
  const auto enrolled = fe.generate(w, drbg);
  const crypto::Bytes blob = serialize_helper(enrolled.helper);

  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_THROW(deserialize_helper(crypto::ByteView(blob).first(cut)),
                 std::runtime_error)
        << "cut " << cut;
  }
}

}  // namespace
}  // namespace neuropuls::ecc
