// Identification error-rate tests (FAR/FRR/EER) — hand-computed cases
// plus an end-to-end sweep on a real photonic-PUF population.
#include <gtest/gtest.h>

#include "crypto/chacha20.hpp"
#include "crypto/ctr_drbg.hpp"
#include "metrics/identification.hpp"
#include "metrics/nist.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::metrics {
namespace {

TEST(Roc, HandComputed) {
  // Genuine distances cluster at 0.05; impostors at 0.45.
  const std::vector<double> intra = {0.04, 0.05, 0.06};
  const std::vector<double> inter = {0.44, 0.45, 0.46};
  const auto curve = roc_curve(intra, inter, 10);
  ASSERT_EQ(curve.size(), 11u);
  // At threshold 0: everything rejected.
  EXPECT_DOUBLE_EQ(curve.front().frr, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().far, 0.0);
  // At threshold 0.5: everything accepted.
  EXPECT_DOUBLE_EQ(curve.back().frr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().far, 1.0);
  // At threshold 0.25: perfect separation.
  EXPECT_DOUBLE_EQ(curve[5].frr, 0.0);
  EXPECT_DOUBLE_EQ(curve[5].far, 0.0);
}

TEST(Roc, RejectsEmptyInput) {
  EXPECT_THROW(roc_curve({}, {0.4}), std::invalid_argument);
  EXPECT_THROW(roc_curve({0.1}, {}), std::invalid_argument);
  EXPECT_THROW(roc_curve({0.1}, {0.4}, 1), std::invalid_argument);
  EXPECT_THROW(equal_error_rate({}, {}), std::invalid_argument);
  EXPECT_THROW(zero_error_window({}, {0.4}), std::invalid_argument);
}

TEST(Eer, SeparatedDistributionsGiveZero) {
  const std::vector<double> intra = {0.02, 0.03, 0.05};
  const std::vector<double> inter = {0.40, 0.45, 0.50};
  const auto result = equal_error_rate(intra, inter);
  EXPECT_DOUBLE_EQ(result.eer, 0.0);
  EXPECT_GE(result.threshold, 0.05);
  EXPECT_LT(result.threshold, 0.40);
}

TEST(Eer, OverlappingDistributionsGivePositive) {
  const std::vector<double> intra = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> inter = {0.2, 0.3, 0.4, 0.5};
  EXPECT_GT(equal_error_rate(intra, inter).eer, 0.1);
}

TEST(ZeroErrorWindow, ExistsIffSeparated) {
  const auto good = zero_error_window({0.05}, {0.45});
  EXPECT_TRUE(good.exists);
  EXPECT_DOUBLE_EQ(good.low, 0.05);
  EXPECT_DOUBLE_EQ(good.high, 0.45);
  const auto bad = zero_error_window({0.3}, {0.2});
  EXPECT_FALSE(bad.exists);
}

TEST(GatherSamples, CountsAreRight) {
  const std::vector<crypto::Bytes> refs = {{0x00}, {0xFF}, {0x0F}};
  const std::vector<std::vector<crypto::Bytes>> rereads = {
      {{0x00}, {0x01}}, {{0xFF}}, {{0x0F}, {0x1F}, {0x0E}}};
  const auto samples = gather_distance_samples(refs, rereads);
  EXPECT_EQ(samples.intra.size(), 6u);
  EXPECT_EQ(samples.inter.size(), 3u);
  EXPECT_THROW(gather_distance_samples({}, {}), std::invalid_argument);
}

TEST(Identification, PhotonicPopulationHasZeroErrorWindow) {
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  crypto::ChaChaDrbg rng(crypto::bytes_of("ident"));
  const puf::Challenge challenge = rng.generate(4);
  std::vector<crypto::Bytes> refs;
  std::vector<std::vector<crypto::Bytes>> rereads;
  for (int d = 0; d < 10; ++d) {
    puf::PhotonicPuf device(cfg, 6060, d);
    refs.push_back(device.evaluate_noiseless(challenge));
    std::vector<crypto::Bytes> reads;
    for (int r = 0; r < 6; ++r) reads.push_back(device.evaluate(challenge));
    rereads.push_back(std::move(reads));
  }
  const auto samples = gather_distance_samples(refs, rereads);
  const auto eer = equal_error_rate(samples.intra, samples.inter);
  EXPECT_LT(eer.eer, 0.02);
  const auto window = zero_error_window(samples.intra, samples.inter);
  EXPECT_TRUE(window.exists);
  EXPECT_GT(window.high - window.low, 0.05);  // comfortable margin
}

// ---- CTR-DRBG ---------------------------------------------------------------

TEST(CtrDrbg, DeterministicAndSeedSensitive) {
  crypto::Bytes seed(32, 0x42);
  crypto::CtrDrbg a(seed), b(seed);
  EXPECT_EQ(a.generate(64), b.generate(64));
  seed[0] ^= 1;
  crypto::CtrDrbg c(seed);
  EXPECT_NE(a.generate(64), c.generate(64));
}

TEST(CtrDrbg, BacktrackingResistance) {
  // Two generators with the same seed diverge permanently after one
  // produces output (state is re-keyed per request)... but stay in sync
  // when both make identical requests.
  crypto::CtrDrbg a(crypto::Bytes(32, 0x11));
  crypto::CtrDrbg b(crypto::Bytes(32, 0x11));
  (void)a.generate(16);
  (void)b.generate(16);
  EXPECT_EQ(a.generate(16), b.generate(16));
}

TEST(CtrDrbg, ReseedChangesStream) {
  crypto::CtrDrbg a(crypto::Bytes(32, 0x11));
  crypto::CtrDrbg b(crypto::Bytes(32, 0x11));
  a.reseed(crypto::bytes_of("fresh entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
  EXPECT_EQ(a.requests_since_reseed(), 1u);
}

TEST(CtrDrbg, RejectsShortEntropy) {
  EXPECT_THROW(crypto::CtrDrbg(crypto::Bytes(31, 0)), std::invalid_argument);
}

TEST(CtrDrbg, OutputLooksRandom) {
  crypto::CtrDrbg drbg(crypto::Bytes(32, 0x77));
  const auto bits = bits_from_bytes(drbg.generate(2048));
  EXPECT_DOUBLE_EQ(nist_pass_fraction(bits), 1.0);
}

}  // namespace
}  // namespace neuropuls::metrics
