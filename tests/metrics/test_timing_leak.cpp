// Timing-leak harness tests: constant-time primitives stay under the
// dudect threshold, the deliberately variable-time control is flagged,
// and the report/config plumbing behaves.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "metrics/timing_leak.hpp"

namespace neuropuls::metrics {
namespace {

// Timing measurements are statistical: a loaded CI machine can push one
// run of a perfectly constant-time target over the threshold. Take the
// best of three independently-seeded runs — a genuinely leaking target
// fails all three (its |t| grows with sample count; the control lands in
// the hundreds), while a constant-time one passes with overwhelming
// probability.
TimingLeakReport best_of_three(const TimingTarget& target,
                               crypto::ByteView fixed_input,
                               TimingLeakConfig config) {
  TimingLeakReport best;
  best.t_statistic = 1e18;
  for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
    config.seed = 1 + attempt;
    const TimingLeakReport report =
        measure_timing_leak(target, fixed_input, config);
    if (std::abs(report.t_statistic) < std::abs(best.t_statistic)) {
      best = report;
    }
    if (!best.leaking) break;
  }
  return best;
}

TimingLeakConfig quick_config() {
  TimingLeakConfig config;
  config.samples_per_class = 12000;
  config.warmup = 512;
  return config;
}

TEST(TimingLeak, CtEqualIsConstantTime) {
  // The fixed class matches the secret exactly; the random class
  // mismatches (usually in the first byte). An early-exit comparator
  // would separate the classes; ct_equal must not.
  const crypto::Bytes secret(4096, 0x5A);
  const TimingTarget target = [&secret](crypto::ByteView input) {
    volatile bool sink = crypto::ct_equal(input, secret);
    (void)sink;
  };
  const auto report = best_of_three(target, secret, quick_config());
  EXPECT_FALSE(report.leaking)
      << "ct_equal flagged: t=" << report.t_statistic;
  EXPECT_GT(report.used_fixed, 0u);
  EXPECT_GT(report.used_random, 0u);
}

TEST(TimingLeak, VariableTimeControlIsFlagged) {
  // The positive control: if the harness cannot flag a byte-wise
  // early-exit over 4 KiB, it cannot flag anything.
  const crypto::Bytes secret(4096, 0x5A);
  TimingLeakConfig config = quick_config();
  const TimingTarget target = [&secret](crypto::ByteView input) {
    volatile bool sink = variable_time_equal(input, secret);
    (void)sink;
  };
  const auto report = measure_timing_leak(target, secret, config);
  EXPECT_TRUE(report.leaking)
      << "control NOT flagged: t=" << report.t_statistic;
  // The fixed class scans all 4096 bytes; the random class exits after
  // the first mismatch, so fixed must be measurably slower on average.
  EXPECT_GT(report.mean_fixed_ns, report.mean_random_ns);
}

TEST(TimingLeak, CmacTagVerificationIsConstantTime) {
  // AES-CMAC tag check as the secure channel performs it: recompute the
  // tag over the input and compare in constant time. The input is the
  // message; the comparison result (match for the fixed class only) must
  // not modulate the timing.
  const crypto::Bytes key(16, 0x0F);
  const crypto::Bytes message(256, 0x33);
  const crypto::Bytes good_tag = crypto::aes_cmac(key, message);
  const TimingTarget target = [&](crypto::ByteView input) {
    const crypto::Bytes tag = crypto::aes_cmac(key, input);
    volatile bool sink = crypto::ct_equal(tag, good_tag);
    (void)sink;
  };
  const auto report = best_of_three(target, message, quick_config());
  EXPECT_FALSE(report.leaking)
      << "CMAC verify flagged: t=" << report.t_statistic;
}

TEST(TimingLeak, HmacVerificationIsConstantTime) {
  // HMAC-SHA256 verify: recompute over the input, constant-time compare
  // against the expected MAC (EKE key-confirmation shape).
  const crypto::Bytes key(32, 0x77);
  const crypto::Bytes message(256, 0x44);
  const crypto::Bytes good_mac = crypto::hmac_sha256(key, message);
  const TimingTarget target = [&](crypto::ByteView input) {
    const crypto::Bytes mac = crypto::hmac_sha256(key, input);
    volatile bool sink = crypto::ct_equal(mac, good_mac);
    (void)sink;
  };
  const auto report = best_of_three(target, message, quick_config());
  EXPECT_FALSE(report.leaking)
      << "HMAC verify flagged: t=" << report.t_statistic;
}

TEST(TimingLeak, ReportEchoesThreshold) {
  const crypto::Bytes fixed(64, 1);
  TimingLeakConfig config;
  config.samples_per_class = 64;
  config.threshold = 9.0;
  const auto report = measure_timing_leak(
      [](crypto::ByteView) {}, fixed, config);
  EXPECT_DOUBLE_EQ(report.threshold, 9.0);
}

TEST(TimingLeak, ConfigValidation) {
  const crypto::Bytes fixed(16, 1);
  const TimingTarget noop = [](crypto::ByteView) {};
  EXPECT_THROW(measure_timing_leak(nullptr, fixed, {}),
               std::invalid_argument);
  EXPECT_THROW(measure_timing_leak(noop, crypto::ByteView{}, {}),
               std::invalid_argument);
  TimingLeakConfig too_few;
  too_few.samples_per_class = 4;
  EXPECT_THROW(measure_timing_leak(noop, fixed, too_few),
               std::invalid_argument);
  TimingLeakConfig bad_quantile;
  bad_quantile.crop_quantile = 0.0;
  EXPECT_THROW(measure_timing_leak(noop, fixed, bad_quantile),
               std::invalid_argument);
}

TEST(VariableTimeEqual, FunctionalBehaviour) {
  const crypto::Bytes a = {1, 2, 3};
  const crypto::Bytes b = {1, 2, 3};
  const crypto::Bytes c = {1, 2, 4};
  EXPECT_TRUE(variable_time_equal(a, b));
  EXPECT_FALSE(variable_time_equal(a, c));
  EXPECT_FALSE(variable_time_equal(a, crypto::ByteView(b).first(2)));
  EXPECT_TRUE(variable_time_equal({}, {}));
}

}  // namespace
}  // namespace neuropuls::metrics
