// Metrics tests: population statistics against hand-computed values and
// NIST tests against SP 800-22 worked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.hpp"
#include "metrics/nist.hpp"
#include "metrics/population.hpp"
#include "metrics/special_functions.hpp"

namespace neuropuls::metrics {
namespace {

using crypto::Bytes;

TEST(Uniformity, HandComputed) {
  EXPECT_DOUBLE_EQ(uniformity(Bytes{0xFF}), 1.0);
  EXPECT_DOUBLE_EQ(uniformity(Bytes{0x00}), 0.0);
  EXPECT_DOUBLE_EQ(uniformity(Bytes{0x0F, 0xF0}), 0.5);
  EXPECT_THROW(uniformity(Bytes{}), std::invalid_argument);
}

TEST(Uniqueness, HandComputed) {
  // Three 8-bit devices: pairwise HDs 8/8, 4/8, 4/8 -> mean 2/3.
  const std::vector<Bytes> devices = {{0x00}, {0xFF}, {0x0F}};
  EXPECT_NEAR(uniqueness(devices), (1.0 + 0.5 + 0.5) / 3.0, 1e-12);
  EXPECT_THROW(uniqueness({{0x00}}), std::invalid_argument);
}

TEST(Reliability, HandComputed) {
  const Bytes ref{0xF0};
  // One identical, one with 2 flips of 8.
  EXPECT_NEAR(reliability(ref, {{0xF0}, {0xC0}}),
              1.0 - (0.0 + 0.25) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(reliability(ref, {}), 1.0);
}

TEST(BinaryEntropy, Endpoints) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.1), 0.469, 0.001);
}

TEST(BitAliasing, DetectsStuckBit) {
  // Bit 0 is 1 on all devices (aliased); bit 7 is split 50/50.
  const std::vector<Bytes> devices = {{0x81}, {0x80}, {0x81}, {0x80}};
  const auto h = bit_aliasing_entropy(devices);
  EXPECT_DOUBLE_EQ(h[0], 0.0);       // always 1 -> no entropy
  EXPECT_DOUBLE_EQ(h[7], 1.0);       // half/half -> full entropy
  EXPECT_LT(mean_aliasing_entropy(devices), 1.0);
}

TEST(MinEntropy, PerfectAndStuck) {
  const std::vector<Bytes> split = {{0x00}, {0xFF}};
  EXPECT_DOUBLE_EQ(min_entropy_per_bit(split), 1.0);
  const std::vector<Bytes> stuck = {{0xFF}, {0xFF}};
  EXPECT_DOUBLE_EQ(min_entropy_per_bit(stuck), 0.0);
}

TEST(Autocorrelation, AlternatingSequence) {
  // 0xAA = 10101010...: lag-1 correlation -1, lag-2 correlation +1.
  const Bytes alt(8, 0xAA);
  EXPECT_NEAR(bit_autocorrelation(alt, 1), -1.0, 0.05);
  EXPECT_NEAR(bit_autocorrelation(alt, 2), 1.0, 0.05);
  EXPECT_THROW(bit_autocorrelation(alt, 0), std::invalid_argument);
  EXPECT_THROW(bit_autocorrelation(alt, 64), std::invalid_argument);
}

TEST(PopulationReport, AggregatesAllFields) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("pop"));
  std::vector<Bytes> devices;
  std::vector<std::vector<Bytes>> readings;
  for (int d = 0; d < 16; ++d) {
    devices.push_back(rng.generate(32));
    readings.push_back({devices.back(), devices.back()});
  }
  const auto report = population_report(devices, readings);
  EXPECT_NEAR(report.uniformity_mean, 0.5, 0.06);
  EXPECT_NEAR(report.uniqueness, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(report.reliability_mean, 1.0);
  EXPECT_GT(report.aliasing_entropy_mean, 0.7);
  EXPECT_GT(report.min_entropy, 0.3);
  EXPECT_THROW(population_report(devices, {{}}), std::invalid_argument);
}

// ---- Special functions -------------------------------------------------------

TEST(IncompleteGamma, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(igamc(1.0, 2.0), std::exp(-2.0), 1e-12);
  // P + Q = 1.
  EXPECT_NEAR(igam(2.5, 1.7) + igamc(2.5, 1.7), 1.0, 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(igam(0.5, 1.44), std::erf(1.2), 1e-10);
  EXPECT_DOUBLE_EQ(igam(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(igamc(3.0, 0.0), 1.0);
  EXPECT_THROW(igam(-1.0, 1.0), std::domain_error);
  EXPECT_THROW(igamc(1.0, -1.0), std::domain_error);
}

// ---- NIST tests ---------------------------------------------------------------

TEST(Nist, BitsFromBytesMsbFirst) {
  const auto bits = bits_from_bytes(Bytes{0x81});
  const Bits expected = {1, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(bits, expected);
}

// SP 800-22 §2.1.8 worked example: the 100-bit expansion of pi's binary
// digits gives p = 0.109599.
Bits sp80022_pi_bits() {
  const char* s =
      "11001001000011111101101010100010001000010110100011"
      "00001000110100110001001100011001100010100010111000";
  Bits bits;
  for (const char* p = s; *p; ++p) bits.push_back(*p == '1');
  return bits;
}

TEST(Nist, FrequencyWorkedExample) {
  const auto r = nist_frequency(sp80022_pi_bits());
  EXPECT_NEAR(r.p_value, 0.109599, 1e-4);
  EXPECT_TRUE(r.passed);
}

TEST(Nist, RunsWorkedExample) {
  // SP 800-22 §2.3.8 example (same 100 pi bits): p = 0.500798.
  const auto r = nist_runs(sp80022_pi_bits());
  EXPECT_NEAR(r.p_value, 0.500798, 1e-4);
}

TEST(Nist, CusumWorkedExample) {
  // SP 800-22 §2.13.8 example (same 100 pi bits): forward p = 0.219194.
  const auto r = nist_cusum(sp80022_pi_bits());
  EXPECT_NEAR(r.p_value, 0.219194, 1e-4);
}

TEST(Nist, RandomDataPassesSuite) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("nist-random"));
  const auto bits = bits_from_bytes(rng.generate(4096));
  const auto results = nist_suite(bits);
  for (const auto& r : results) {
    EXPECT_TRUE(r.passed) << r.test << " p=" << r.p_value;
  }
  EXPECT_DOUBLE_EQ(nist_pass_fraction(bits), 1.0);
}

TEST(Nist, ConstantDataFailsHard) {
  const Bits zeros(1024, 0);
  EXPECT_LT(nist_frequency(zeros).p_value, 1e-6);
  EXPECT_FALSE(nist_runs(zeros).passed);
  EXPECT_FALSE(nist_cusum(zeros).passed);
  EXPECT_LT(nist_pass_fraction(zeros), 0.5);
}

TEST(Nist, AlternatingDataFailsRunsButNotFrequency) {
  Bits alternating(1024);
  for (std::size_t i = 0; i < alternating.size(); ++i) {
    alternating[i] = i % 2;
  }
  EXPECT_TRUE(nist_frequency(alternating).passed);
  EXPECT_FALSE(nist_runs(alternating).passed);       // far too many runs
  EXPECT_FALSE(nist_serial(alternating).passed);     // period-2 structure
}

TEST(Nist, BiasedDataFailsFrequency) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("biased"));
  Bits biased;
  for (int i = 0; i < 2048; ++i) {
    biased.push_back(rng.uniform(100) < 60 ? 1 : 0);  // 60% ones
  }
  EXPECT_FALSE(nist_frequency(biased).passed);
}

TEST(Nist, ShortSequencesRejected) {
  const Bits tiny(50, 1);
  EXPECT_THROW(nist_frequency(tiny), std::invalid_argument);
  EXPECT_THROW(nist_longest_run(Bits(100, 1)), std::invalid_argument);
  EXPECT_THROW(nist_serial(Bits(200, 1), 1), std::invalid_argument);
  EXPECT_THROW(nist_block_frequency(Bits(200, 1), 0), std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::metrics
