// Streaming population estimators (ctest label: fleet).
//
// The fleet simulator's memory contract rests on three properties tested
// here against exact references:
//   * reservoir/hash sampling is deterministic under a fixed seed (any
//     worker, any chunking selects the same sample),
//   * the GK sketch answers quantiles within its documented rank error
//     on a million-sample stream,
//   * GK merge is associative (merge defers compression), so worker-
//     local sketches combine to the same summary in any tree shape.
// Plus the chunked-parallel uniqueness rewrite: equal to the serial
// definition, bit-identical at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "metrics/population.hpp"
#include "metrics/streaming.hpp"

namespace neuropuls::metrics {
namespace {

std::vector<double> splitmix_stream(std::uint64_t seed, std::size_t n) {
  std::vector<double> values(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(splitmix64_next(state) >> 11) *
                0x1.0p-53;
  }
  return values;
}

TEST(ReservoirSampler, DeterministicUnderFixedSeed) {
  ReservoirSampler<std::uint64_t> a(64, 0x5EED);
  ReservoirSampler<std::uint64_t> b(64, 0x5EED);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_EQ(a.count(), 10'000u);
  EXPECT_EQ(a.sample(), b.sample());
  EXPECT_EQ(a.sample().size(), 64u);

  // A different seed keeps a different subset (overwhelmingly likely
  // for 64-of-10000).
  ReservoirSampler<std::uint64_t> c(64, 0x5EED + 1);
  for (std::uint64_t i = 0; i < 10'000; ++i) c.add(i);
  EXPECT_NE(a.sample(), c.sample());
}

TEST(ReservoirSampler, KeepsWholeStreamBelowCapacity) {
  ReservoirSampler<int> s(16, 1);
  for (int i = 0; i < 10; ++i) s.add(i);
  EXPECT_EQ(s.sample(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ReservoirSampler, SampleIsUnbiasedAcrossStream) {
  // Every element must be eligible: the mean index of a uniform sample
  // of [0, n) concentrates near n/2. A broken bounded-draw (e.g. a
  // modulo-biased one that favours small indices) shifts it.
  ReservoirSampler<std::uint64_t> s(512, 0xABCDEF);
  const std::uint64_t n = 100'000;
  for (std::uint64_t i = 0; i < n; ++i) s.add(i);
  double mean = 0.0;
  for (const std::uint64_t v : s.sample()) mean += static_cast<double>(v);
  mean /= static_cast<double>(s.sample().size());
  EXPECT_NEAR(mean, n / 2.0, n * 0.06);
}

TEST(HashSample, OrderAndChunkingIndependent) {
  // The selected set is a pure function of (seed, id): any iteration
  // order or partition of the id space agrees.
  std::vector<std::uint64_t> forward;
  std::vector<std::uint64_t> backward;
  for (std::uint64_t id = 0; id < 5000; ++id) {
    if (hash_sample(42, id, 0.05)) forward.push_back(id);
  }
  for (std::uint64_t id = 5000; id-- > 0;) {
    if (hash_sample(42, id, 0.05)) backward.push_back(id);
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
  // ~250 expected; a factor-2 band catches rate bugs without flaking.
  EXPECT_GT(forward.size(), 125u);
  EXPECT_LT(forward.size(), 500u);
  // Rate endpoints.
  EXPECT_FALSE(hash_sample(42, 7, 0.0));
  EXPECT_TRUE(hash_sample(42, 7, 1.0));
}

TEST(GkQuantileSketch, ErrorBoundOnMillionSampleStream) {
  constexpr std::size_t kN = 1'000'000;
  constexpr double kEps = 0.01;
  std::vector<double> values = splitmix_stream(0x61AB5EED, kN);
  GkQuantileSketch sketch(kEps);
  for (const double v : values) sketch.add(v);
  ASSERT_EQ(sketch.count(), kN);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double answer = sketch.quantile(q);
    // Rank error, not value error: find the answer's true rank and
    // require it within eps*n of the requested rank (the GK guarantee).
    const auto rank = static_cast<double>(
        std::lower_bound(sorted.begin(), sorted.end(), answer) -
        sorted.begin());
    EXPECT_NEAR(rank, q * kN, kEps * kN) << "q=" << q;
  }
  // The summary stays sub-linear: O((1/eps) * log(eps*n)) tuples.
  EXPECT_LT(sketch.tuples(), 4000u);
}

TEST(GkQuantileSketch, MergeIsAssociative) {
  // Worker-local sketches over three disjoint sub-streams; (a+b)+c and
  // a+(b+c) must agree tuple-for-tuple because merge defers compression
  // (a sorted multiset union is order-independent).
  const std::vector<double> stream = splitmix_stream(0xC0FFEE, 30'000);
  auto build = [&](std::size_t lo, std::size_t hi) {
    GkQuantileSketch s(0.02);
    for (std::size_t i = lo; i < hi; ++i) s.add(stream[i]);
    return s;
  };
  const GkQuantileSketch a = build(0, 10'000);
  const GkQuantileSketch b = build(10'000, 20'000);
  const GkQuantileSketch c = build(20'000, 30'000);

  GkQuantileSketch left = a;
  left.merge(b);
  left.merge(c);
  GkQuantileSketch bc = b;
  bc.merge(c);
  GkQuantileSketch right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), 30'000u);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.tuples(), right.tuples());
  // Merge keeps the whole tuple multiset, so the two association orders
  // agree exactly — every quantile on a fine grid is bit-identical.
  for (int i = 0; i <= 100; ++i) {
    const double q = i / 100.0;
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
  }

  // One merge round keeps the documented 2*eps rank guarantee.
  std::vector<double> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  left.compress();
  for (const double q : {0.1, 0.5, 0.9}) {
    const double answer = left.quantile(q);
    const auto rank = static_cast<double>(
        std::lower_bound(sorted.begin(), sorted.end(), answer) -
        sorted.begin());
    EXPECT_NEAR(rank, q * 30'000, 2 * 0.02 * 30'000) << "q=" << q;
  }
}

TEST(GkQuantileSketch, HandComputedSmallStream) {
  GkQuantileSketch s(0.1);
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_THROW(GkQuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(GkQuantileSketch(0.1).quantile(0.5), std::invalid_argument);
}

TEST(MeanAccumulator, MergeMatchesSingleStream) {
  MeanAccumulator whole;
  MeanAccumulator left;
  MeanAccumulator right;
  for (int i = 1; i <= 100; ++i) {
    whole.add(i);
    (i <= 37 ? left : right).add(i);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(whole.mean(), 50.5);
}

// --- chunked-parallel uniqueness (metrics/population.cpp) ---

std::vector<crypto::Bytes> random_population(std::size_t devices,
                                             std::size_t bytes) {
  std::vector<crypto::Bytes> responses(devices);
  std::uint64_t state = 0xDECAF;
  for (auto& r : responses) {
    r.resize(bytes);
    for (auto& byte : r) {
      byte = static_cast<std::uint8_t>(splitmix64_next(state));
    }
  }
  return responses;
}

double uniqueness_serial_reference(
    const std::vector<crypto::Bytes>& responses) {
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < responses.size(); ++a) {
    for (std::size_t b = a + 1; b < responses.size(); ++b) {
      total += crypto::fractional_hamming_distance(responses[a],
                                                   responses[b]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

TEST(Uniqueness, ChunkedMatchesSerialReference) {
  // Sizes straddle the chunk count (128): fewer pairs than chunks, the
  // 2-device edge, and a many-chunk population.
  for (const std::size_t devices : {2u, 3u, 9u, 17u, 100u}) {
    const auto population = random_population(devices, 16);
    EXPECT_NEAR(uniqueness(population),
                uniqueness_serial_reference(population), 1e-12)
        << devices << " devices";
  }
}

TEST(Uniqueness, BitIdenticalAcrossThreadCounts) {
  const auto population = random_population(120, 32);
  common::ThreadPool one(1);
  common::ThreadPool four(4);
  const double serial = uniqueness(population, &one);
  const double parallel = uniqueness(population, &four);
  // Chunk boundaries and the reduction order depend only on the device
  // count, so this is exact equality, not a tolerance.
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace neuropuls::metrics
