// Tests for the lane-parallel SoA engine: FieldBlock storage, the simd.hpp
// kernels against their scalar std::complex equivalents, RingTimeDomainBlock
// state handling, TimeDomainScrambler::step_block vs step_inplace, the
// scramble_series streaming path, and the end-to-end contract that block
// batch evaluation of a PhotonicPuf is bit-identical to the serial scalar
// path at every batch size (full blocks, tail blocks, single lanes).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/simd.hpp"
#include "crypto/chacha20.hpp"
#include "photonic/circuit.hpp"
#include "photonic/field_block.hpp"
#include "photonic/ring.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::photonic {
namespace {

constexpr std::size_t kLanes = simd::kDefaultLanes;

ScramblerDesign small_design() {
  ScramblerDesign d;
  d.ports = 8;
  d.layers = 4;
  return d;
}

/// Deterministic, non-trivial per-lane complex values.
Complex lane_value(std::size_t port, std::size_t lane) {
  const double base = static_cast<double>(port * 31 + lane * 7 + 1);
  return {0.01 * base, -0.003 * base + 0.5};
}

TEST(FieldBlock, DimensionsAndZeroInit) {
  FieldBlock block(4, kLanes);
  EXPECT_EQ(block.ports(), 4u);
  EXPECT_EQ(block.lanes(), kLanes);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      EXPECT_EQ(block.at(p, l), (Complex{0.0, 0.0}));
    }
  }
}

TEST(FieldBlock, RejectsEmptyDimensions) {
  EXPECT_THROW(FieldBlock(0, 4), std::invalid_argument);
  EXPECT_THROW(FieldBlock(4, 0), std::invalid_argument);
}

TEST(FieldBlock, SetAtRoundTripAndPlaneLayout) {
  FieldBlock block(3, 5);
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t l = 0; l < 5; ++l) {
      block.set(p, l, lane_value(p, l));
    }
  }
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t l = 0; l < 5; ++l) {
      EXPECT_EQ(block.at(p, l), lane_value(p, l));
      // The plane pointers must alias the same storage as at().
      EXPECT_EQ(block.re(p)[l], lane_value(p, l).real());
      EXPECT_EQ(block.im(p)[l], lane_value(p, l).imag());
    }
  }
  block.clear();
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t l = 0; l < 5; ++l) {
      EXPECT_EQ(block.at(p, l), (Complex{0.0, 0.0}));
    }
  }
}

TEST(FieldBlock, PlanesAreAligned) {
  FieldBlock block(2, kLanes);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block.re(0)) %
                simd::kLaneAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block.im(0)) %
                simd::kLaneAlignment,
            0u);
}

TEST(SimdKernels, ComplexScaleMatchesScalarComplex) {
  const Complex c{0.8, -0.6};
  simd::AlignedVector<double> re(kLanes), im(kLanes);
  std::vector<Complex> reference(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    reference[l] = lane_value(0, l);
    re[l] = reference[l].real();
    im[l] = reference[l].imag();
  }
  simd::complex_scale(re.data(), im.data(), c.real(), c.imag(), kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    Complex scalar = reference[l];
    scalar *= c;
    EXPECT_EQ(re[l], scalar.real()) << "lane " << l;
    EXPECT_EQ(im[l], scalar.imag()) << "lane " << l;
  }
}

TEST(SimdKernels, FanoutMatchesScalarComplex) {
  const Complex tap{0.31, 0.17};
  simd::AlignedVector<double> sre(kLanes), sim_(kLanes), dre(kLanes),
      dim(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    sre[l] = lane_value(1, l).real();
    sim_[l] = lane_value(1, l).imag();
  }
  simd::complex_fanout(sre.data(), sim_.data(), tap.real(), tap.imag(),
                       dre.data(), dim.data(), kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    const Complex scalar = lane_value(1, l) * tap;
    EXPECT_EQ(dre[l], scalar.real()) << "lane " << l;
    EXPECT_EQ(dim[l], scalar.imag()) << "lane " << l;
  }
}

TEST(SimdKernels, CouplerMixMatchesScalarComplex) {
  const double t = 0.83;
  const double k = 0.55;
  simd::AlignedVector<double> are(kLanes), aim(kLanes), bre(kLanes),
      bim(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    are[l] = lane_value(2, l).real();
    aim[l] = lane_value(2, l).imag();
    bre[l] = lane_value(3, l).real();
    bim[l] = lane_value(3, l).imag();
  }
  simd::coupler_mix(are.data(), aim.data(), bre.data(), bim.data(), t, k,
                    kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    // The scalar formula of TimeDomainScrambler::step_inplace.
    const Complex a = lane_value(2, l);
    const Complex b = lane_value(3, l);
    const Complex minus_ik(0.0, -k);
    const Complex s0 = t * a + minus_ik * b;
    const Complex s1 = minus_ik * a + t * b;
    EXPECT_EQ(are[l], s0.real()) << "lane " << l;
    EXPECT_EQ(aim[l], s0.imag()) << "lane " << l;
    EXPECT_EQ(bre[l], s1.real()) << "lane " << l;
    EXPECT_EQ(bim[l], s1.imag()) << "lane " << l;
  }
}

TEST(RingBlock, MatchesScalarRingPerLane) {
  RingTimeDomainConstants constants;
  constants.t = 0.9;
  constants.k = 0.43589;
  constants.feedback = Complex{0.7, -0.55};
  constants.delay_samples = 3;

  RingTimeDomainBlock block_ring(constants, kLanes);
  std::vector<RingTimeDomain> scalar_rings(kLanes,
                                           RingTimeDomain(constants));

  simd::AlignedVector<double> re(kLanes), im(kLanes);
  for (int step = 0; step < 17; ++step) {
    std::vector<Complex> inputs(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      inputs[l] = lane_value(static_cast<std::size_t>(step), l);
      re[l] = inputs[l].real();
      im[l] = inputs[l].imag();
    }
    block_ring.step(re.data(), im.data());
    for (std::size_t l = 0; l < kLanes; ++l) {
      const Complex scalar = scalar_rings[l].step(inputs[l]);
      EXPECT_EQ(re[l], scalar.real()) << "step " << step << " lane " << l;
      EXPECT_EQ(im[l], scalar.imag()) << "step " << step << " lane " << l;
    }
  }
}

TEST(RingBlock, ResetClearsStateBetweenBlocks) {
  RingTimeDomainConstants constants;
  constants.delay_samples = 2;
  constants.t = 0.8;
  constants.k = 0.6;
  constants.feedback = Complex{0.9, 0.1};
  RingTimeDomainBlock ring(constants, 4);

  simd::AlignedVector<double> re(4), im(4);
  auto run_block = [&]() {
    std::vector<double> outputs;
    for (int step = 0; step < 5; ++step) {
      for (std::size_t l = 0; l < 4; ++l) {
        re[l] = 1.0 + static_cast<double>(step + 1) * 0.25;
        im[l] = -0.5;
      }
      ring.step(re.data(), im.data());
      for (std::size_t l = 0; l < 4; ++l) {
        outputs.push_back(re[l]);
        outputs.push_back(im[l]);
      }
    }
    return outputs;
  };

  const auto first = run_block();
  const auto dirty = run_block();  // carries state from the first block
  EXPECT_NE(first, dirty);
  ring.reset();
  const auto clean = run_block();  // reset must reproduce the first block
  EXPECT_EQ(first, clean);
}

TEST(ScramblerBlock, StepBlockBitIdenticalToStepInplace) {
  ScramblerCircuit circuit(small_design(), FabricationModel(7, 3));
  auto tables = make_scrambler_tables(circuit, OperatingPoint{}, 40e-12);

  TimeDomainScrambler block_mode(tables, kLanes);
  std::vector<TimeDomainScrambler> scalar_mode;
  for (std::size_t l = 0; l < kLanes; ++l) scalar_mode.emplace_back(tables);

  FieldBlock block(tables->ports(), kLanes);
  std::vector<PortVector> states(kLanes,
                                 PortVector(tables->ports(), Complex{}));
  for (int step = 0; step < 25; ++step) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t p = 0; p < tables->ports(); ++p) {
        const Complex v =
            lane_value(p + static_cast<std::size_t>(step), l);
        block.set(p, l, v);
        states[l][p] = v;
      }
    }
    block_mode.step_block(block);
    for (std::size_t l = 0; l < kLanes; ++l) {
      scalar_mode[l].step_inplace(states[l]);
      for (std::size_t p = 0; p < tables->ports(); ++p) {
        EXPECT_EQ(block.at(p, l), states[l][p])
            << "step " << step << " port " << p << " lane " << l;
      }
    }
  }
}

TEST(ScramblerBlock, RejectsMismatchedBlockAndScalarInstance) {
  ScramblerCircuit circuit(small_design(), FabricationModel(7, 3));
  auto tables = make_scrambler_tables(circuit, OperatingPoint{}, 40e-12);
  EXPECT_THROW(TimeDomainScrambler(tables, 0), std::invalid_argument);

  TimeDomainScrambler block_mode(tables, 4);
  FieldBlock wrong_lanes(tables->ports(), 5);
  EXPECT_THROW(block_mode.step_block(wrong_lanes), std::invalid_argument);
  FieldBlock wrong_ports(tables->ports() + 2, 4);
  EXPECT_THROW(block_mode.step_block(wrong_ports), std::invalid_argument);

  TimeDomainScrambler scalar_mode(tables);
  FieldBlock ok(tables->ports(), 4);
  EXPECT_THROW(scalar_mode.step_block(ok), std::logic_error);
}

TEST(ScramblerBlock, ScrambleSeriesMatchesManualStepping) {
  ScramblerCircuit circuit(small_design(), FabricationModel(9, 1));
  auto tables = make_scrambler_tables(circuit, OperatingPoint{}, 40e-12);

  std::vector<Complex> input;
  for (int i = 0; i < 40; ++i) {
    input.push_back(lane_value(static_cast<std::size_t>(i), 0));
  }

  TimeDomainScrambler series(tables);
  const auto streams = series.scramble_series(input);
  ASSERT_EQ(streams.size(), tables->ports());
  for (const auto& stream : streams) {
    ASSERT_EQ(stream.size(), input.size());
  }

  TimeDomainScrambler reference(tables);
  PortVector state(tables->ports(), Complex{});
  for (std::size_t n = 0; n < input.size(); ++n) {
    std::fill(state.begin(), state.end(), Complex{});
    state[0] = input[n];
    reference.step_inplace(state);
    for (std::size_t p = 0; p < tables->ports(); ++p) {
      EXPECT_EQ(streams[p][n], state[p]) << "sample " << n << " port " << p;
    }
  }
}

// The headline contract: batch evaluation through the lane-block engine is
// bit-identical to the serial scalar reference at every block shape — one
// lane, a partial tail, an exact block, one lane over, and multiple blocks
// plus tail (W = kDefaultLanes).
TEST(ScramblerBlock, NoiselessBatchBitIdenticalAcrossBatchSizes) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 0x5eed, 2);
  crypto::ChaChaDrbg rng(crypto::bytes_of("field-block-batch-sweep"));

  const std::size_t sizes[] = {1, kLanes - 1, kLanes, kLanes + 1,
                               3 * kLanes + 2};
  for (const std::size_t size : sizes) {
    std::vector<puf::Challenge> challenges;
    challenges.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      challenges.push_back(rng.generate(device.challenge_bytes()));
    }
    const auto batch = device.evaluate_noiseless_batch(challenges);
    ASSERT_EQ(batch.size(), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(batch[i], device.evaluate_noiseless(challenges[i]))
          << "batch size " << size << " item " << i;
    }
  }
}

}  // namespace
}  // namespace neuropuls::photonic
