// Tests for the scrambler circuit, source, and detector chain — the
// end-to-end analog front end of the photonic PUF (Fig. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "photonic/circuit.hpp"
#include "photonic/detector.hpp"
#include "photonic/source.hpp"

namespace neuropuls::photonic {
namespace {

ScramblerDesign small_design() {
  ScramblerDesign d;
  d.ports = 8;
  d.layers = 4;
  return d;
}

TEST(Scrambler, RejectsBadGeometry) {
  FabricationModel fab(1, 0);
  ScramblerDesign odd = small_design();
  odd.ports = 7;
  EXPECT_THROW(ScramblerCircuit(odd, fab), std::invalid_argument);
  ScramblerDesign no_layers = small_design();
  no_layers.layers = 0;
  EXPECT_THROW(ScramblerCircuit(no_layers, fab), std::invalid_argument);
}

TEST(Scrambler, EnergyNeverCreated) {
  FabricationModel fab(1, 0);
  ScramblerCircuit circuit(small_design(), fab);
  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const PortVector out = circuit.evaluate(OperatingPoint{}, in);
  EXPECT_LE(total_power(out), total_power(in) + 1e-12);
  EXPECT_GT(total_power(out), 0.0);
}

TEST(Scrambler, SpreadsPowerAcrossPorts) {
  FabricationModel fab(1, 0);
  ScramblerCircuit circuit(small_design(), fab);
  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const PortVector out = circuit.evaluate(OperatingPoint{}, in);
  // More than half the ports should carry non-negligible power.
  int lit = 0;
  for (const auto& e : out) {
    if (std::norm(e) > 1e-4) ++lit;
  }
  EXPECT_GE(lit, 5);
}

TEST(Scrambler, DevicesShareDesignButDiffer) {
  const ScramblerDesign design = small_design();
  ScramblerCircuit dev_a(design, FabricationModel(42, 0));
  ScramblerCircuit dev_b(design, FabricationModel(42, 1));
  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto out_a = dev_a.evaluate(OperatingPoint{}, in);
  const auto out_b = dev_b.evaluate(OperatingPoint{}, in);
  double diff = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    diff += std::abs(std::norm(out_a[i]) - std::norm(out_b[i]));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Scrambler, SameDeviceReproducible) {
  const ScramblerDesign design = small_design();
  ScramblerCircuit dev_1(design, FabricationModel(42, 5));
  ScramblerCircuit dev_2(design, FabricationModel(42, 5));
  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto out_1 = dev_1.evaluate(OperatingPoint{}, in);
  const auto out_2 = dev_2.evaluate(OperatingPoint{}, in);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out_1[i], out_2[i]);
  }
}

TEST(Scrambler, WavelengthSensitivity) {
  FabricationModel fab(7, 0);
  ScramblerCircuit circuit(small_design(), fab);
  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto o1 = circuit.evaluate(OperatingPoint{1.550e-6, 300.0}, in);
  const auto o2 = circuit.evaluate(OperatingPoint{1.5504e-6, 300.0}, in);
  double diff = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    diff += std::abs(std::norm(o1[i]) - std::norm(o2[i]));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Scrambler, MemoryDepthPositiveAndBelow100ns) {
  // §IV claims the response lives "below 100 ns" — the design-scale
  // memory depth must respect that bound with huge margin.
  FabricationModel fab(7, 0);
  ScramblerCircuit circuit(small_design(), fab);
  const double depth = circuit.memory_depth_seconds();
  EXPECT_GT(depth, 0.0);
  EXPECT_LT(depth, 100e-9);
}

TEST(TimeDomain, MatchesSteadyStateForCwInput) {
  // Drive a constant (CW) field; after the transient the time-domain
  // output power must converge to the frequency-domain steady state.
  FabricationModel fab(21, 3);
  ScramblerDesign d = small_design();
  ScramblerCircuit circuit(d, fab);
  const OperatingPoint op;

  PortVector in(8, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto steady = circuit.evaluate(op, in);

  TimeDomainScrambler td(circuit, op, 40e-12);  // 25 GS/s
  PortVector last;
  for (int i = 0; i < 3000; ++i) last = td.step(in);
  for (std::size_t port = 0; port < 8; ++port) {
    EXPECT_NEAR(std::norm(last[port]), std::norm(steady[port]), 5e-3)
        << "port " << port;
  }
}

TEST(TimeDomain, HasInterSymbolMemory) {
  // Two challenge streams identical except in an early bit must produce
  // different outputs *later* in time — the reservoir property.
  FabricationModel fab(22, 0);
  ScramblerDesign d = small_design();
  ScramblerCircuit circuit(d, fab);
  TimeDomainScrambler td_a(circuit, OperatingPoint{}, 40e-12);
  TimeDomainScrambler td_b(circuit, OperatingPoint{}, 40e-12);

  const int kSamples = 400;
  double late_diff = 0.0;
  PortVector in_a(8, Complex{0, 0}), in_b(8, Complex{0, 0});
  for (int i = 0; i < kSamples; ++i) {
    // Streams differ only during samples [10, 20).
    const bool bit_a = (i >= 10 && i < 20);
    in_a[0] = bit_a ? Complex{1.0, 0.0} : Complex{0.3, 0.0};
    in_b[0] = Complex{0.3, 0.0};
    const auto out_a = td_a.step(in_a);
    const auto out_b = td_b.step(in_b);
    if (i >= 40) {
      for (std::size_t p = 0; p < 8; ++p) {
        late_diff += std::abs(out_a[p] - out_b[p]);
      }
    }
  }
  EXPECT_GT(late_diff, 1e-6);
}

TEST(TimeDomain, RinglessAblationHasNoMemory) {
  FabricationModel fab(22, 0);
  ScramblerDesign d = small_design();
  d.with_rings = false;
  ScramblerCircuit circuit(d, fab);
  TimeDomainScrambler td_a(circuit, OperatingPoint{}, 40e-12);
  TimeDomainScrambler td_b(circuit, OperatingPoint{}, 40e-12);
  PortVector in_a(8, Complex{0, 0}), in_b(8, Complex{0, 0});
  double late_diff = 0.0;
  for (int i = 0; i < 100; ++i) {
    in_a[0] = (i < 10) ? Complex{1.0, 0.0} : Complex{0.5, 0.0};
    in_b[0] = Complex{0.5, 0.0};
    const auto out_a = td_a.step(in_a);
    const auto out_b = td_b.step(in_b);
    if (i >= 11) {
      for (std::size_t p = 0; p < 8; ++p) {
        late_diff += std::abs(out_a[p] - out_b[p]);
      }
    }
  }
  // A memoryless mesh: once the inputs re-converge, outputs re-converge.
  EXPECT_NEAR(late_diff, 0.0, 1e-12);
}

TEST(Laser, MeanPowerMatchesSetting) {
  LaserParameters lp;
  lp.power_mw = 5.0;
  Laser laser(lp, 25e9, 1);
  double power = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) power += field_power(laser.sample());
  EXPECT_NEAR(power / kN, 5e-3, 2e-4);
}

TEST(Laser, RejectsBadParameters) {
  LaserParameters lp;
  lp.power_mw = -1.0;
  EXPECT_THROW(Laser(lp, 25e9, 1), std::invalid_argument);
}

TEST(Modulator, ExtinctionRatioRespected) {
  ModulatorParameters mp;
  mp.extinction_ratio_db = 20.0;
  mp.insertion_loss_db = 0.0;
  mp.bandwidth_fraction = 1.0;
  MachZehnderModulator mzm(mp);
  const Complex carrier{1.0, 0.0};
  // Hold each level long enough to settle.
  Complex on, off;
  for (int i = 0; i < 200; ++i) on = mzm.modulate(carrier, true);
  for (int i = 0; i < 200; ++i) off = mzm.modulate(carrier, false);
  const double er_db = power_ratio_to_db(std::norm(on) / std::norm(off));
  EXPECT_NEAR(er_db, 20.0, 0.5);
}

TEST(Modulator, FiniteBandwidthSmoothsTransitions) {
  ModulatorParameters mp;
  mp.bandwidth_fraction = 0.3;
  MachZehnderModulator mzm(mp);
  const Complex carrier{1.0, 0.0};
  // First sample after a 0->1 step must sit well below the settled level.
  for (int i = 0; i < 100; ++i) mzm.modulate(carrier, false);
  const double first = std::abs(mzm.modulate(carrier, true));
  double settled = 0.0;
  for (int i = 0; i < 200; ++i) settled = std::abs(mzm.modulate(carrier, true));
  EXPECT_LT(first, 0.95 * settled);
}

TEST(ModulateBits, ProducesExpectedSampleCount) {
  Laser laser(LaserParameters{}, 25e9, 5);
  MachZehnderModulator mzm;
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1};
  const auto samples = modulate_bits(laser, mzm, bits, 4);
  EXPECT_EQ(samples.size(), 16u);
}

TEST(Photodiode, MeanCurrentIsResponsivityTimesPower) {
  PhotodiodeParameters pp;
  pp.responsivity = 0.8;
  pp.dark_current = 0.0;
  Photodiode pd(pp, 3);
  EXPECT_NEAR(pd.mean_current(Complex{std::sqrt(1e-3), 0.0}), 0.8e-3, 1e-12);
}

TEST(Photodiode, PhaseInvariantMeanButCoherentSumIsNot) {
  // |E|^2 ignores global phase — but the *sum* of two fields depends on
  // their relative phase. This is the §II-A "PDs sensitive to phase due
  // to coherence" property.
  PhotodiodeParameters pp;
  pp.dark_current = 0.0;
  Photodiode pd(pp, 4);
  const Complex e1 = std::polar(0.02, 0.0);
  const Complex e2_inphase = std::polar(0.02, 0.0);
  const Complex e2_antiphase = std::polar(0.02, 3.14159265358979);
  EXPECT_NEAR(pd.mean_current(e1 + e2_inphase), 1.6e-3, 1e-6);
  EXPECT_NEAR(pd.mean_current(e1 + e2_antiphase), 0.0, 1e-9);
}

TEST(Photodiode, ShotNoiseGrowsWithPower) {
  PhotodiodeParameters pp;
  Photodiode pd(pp, 5);
  auto noise_std = [&](double power_w) {
    const Complex field{std::sqrt(power_w), 0.0};
    const double mean = pd.mean_current(field);
    double sq = 0.0;
    constexpr int kN = 4000;
    for (int i = 0; i < kN; ++i) {
      const double d = pd.detect(field) - mean;
      sq += d * d;
    }
    return std::sqrt(sq / kN);
  };
  EXPECT_GT(noise_std(10e-3), 1.5 * noise_std(0.1e-3));
}

TEST(Adc, QuantizesAndSaturates) {
  Adc adc(AdcParameters{8, 1.0, 0.0});
  EXPECT_EQ(adc.quantize(-0.5), 0u);
  EXPECT_EQ(adc.quantize(0.0), 0u);
  EXPECT_EQ(adc.quantize(1.0), 255u);
  EXPECT_EQ(adc.quantize(2.0), 255u);
  EXPECT_EQ(adc.quantize(0.5), 128u);
  EXPECT_THROW(Adc(AdcParameters{0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Adc(AdcParameters{8, -1.0, 0.0}), std::invalid_argument);
}

TEST(ReadoutChain, IntegrationReducesNoise) {
  PhotodiodeParameters pp;
  TiaParameters tp;
  AdcParameters ap{10, 2.0, 0.0};
  const Complex field{std::sqrt(0.2e-3), 0.0};

  auto window_std = [&](std::size_t window) {
    double sum = 0.0, sq = 0.0;
    constexpr int kReps = 60;
    for (int rep = 0; rep < kReps; ++rep) {
      ReadoutChain chain(pp, tp, ap, 25e9,
                         static_cast<std::uint64_t>(rep) * 977 + window);
      const std::vector<Complex> samples(window, field);
      const double v = chain.integrate(samples).mean_current_a;
      sum += v;
      sq += v * v;
    }
    const double mean = sum / kReps;
    return std::sqrt(std::max(0.0, sq / kReps - mean * mean));
  };
  EXPECT_GT(window_std(4), 1.5 * window_std(64));
}

TEST(ReadoutChain, EmptyWindowIsZero) {
  ReadoutChain chain(PhotodiodeParameters{}, TiaParameters{}, AdcParameters{},
                     25e9, 1);
  const auto w = chain.integrate({});
  EXPECT_EQ(w.code, 0u);
  EXPECT_EQ(w.mean_current_a, 0.0);
}

}  // namespace
}  // namespace neuropuls::photonic
