// Physics sanity tests for the passive components: energy conservation,
// resonance behaviour, thermo-optic shifts, and fabrication determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "photonic/circuit.hpp"
#include "photonic/components.hpp"
#include "photonic/ring.hpp"
#include "photonic/thermal.hpp"

namespace neuropuls::photonic {
namespace {

TEST(Constants, DbConversions) {
  EXPECT_NEAR(db_to_field_factor(0.0), 1.0, 1e-12);
  // 20 dB power loss -> field factor 0.1
  EXPECT_NEAR(db_to_field_factor(20.0), 0.1, 1e-12);
  EXPECT_NEAR(power_ratio_to_db(0.5), -3.0103, 1e-3);
}

TEST(Waveguide, LosslessIsUnitMagnitude) {
  Waveguide wg(100e-6, /*loss_db_per_cm=*/0.0);
  const Complex h = wg.transfer(OperatingPoint{});
  EXPECT_NEAR(std::abs(h), 1.0, 1e-12);
}

TEST(Waveguide, LossMatchesLength) {
  // 2 dB/cm over 1 mm = 0.2 dB power = 10^(-0.01) field.
  Waveguide wg(1e-3, 2.0);
  const Complex h = wg.transfer(OperatingPoint{});
  EXPECT_NEAR(std::abs(h), std::pow(10.0, -0.2 / 20.0), 1e-9);
}

TEST(Waveguide, PhaseScalesWithIndexAndLength) {
  OperatingPoint op;
  Waveguide wg(10e-6, 0.0);
  const double expected_phase = 2.0 * std::numbers::pi *
                                kSoiEffectiveIndex * 10e-6 / op.wavelength;
  const Complex h = wg.transfer(op);
  // transfer carries exp(-i beta L); compare modulo 2pi.
  const double got = -std::arg(h);
  EXPECT_NEAR(std::fmod(expected_phase - got, 2.0 * std::numbers::pi), 0.0,
              1e-6);
}

TEST(Waveguide, ThermoOpticShiftsPhase) {
  Waveguide wg(200e-6, 0.0);
  OperatingPoint cold{kDefaultWavelength, 300.0};
  OperatingPoint hot{kDefaultWavelength, 310.0};
  EXPECT_NE(std::arg(wg.transfer(cold)), std::arg(wg.transfer(hot)));
}

TEST(Waveguide, GroupDelayPositive) {
  Waveguide wg(1e-3, 2.0);
  EXPECT_NEAR(wg.group_delay(), kSoiGroupIndex * 1e-3 / kSpeedOfLight, 1e-18);
}

TEST(Waveguide, RejectsNegativeLength) {
  EXPECT_THROW(Waveguide(-1.0), std::invalid_argument);
}

TEST(DirectionalCoupler, ConservesEnergy) {
  for (double k2 : {0.1, 0.5, 0.9}) {
    DirectionalCoupler dc(k2);
    const Complex in0(0.3, 0.4), in1(-0.2, 0.7);
    const auto out = dc.couple(in0, in1);
    EXPECT_NEAR(std::norm(out[0]) + std::norm(out[1]),
                std::norm(in0) + std::norm(in1), 1e-12)
        << "k2=" << k2;
  }
}

TEST(DirectionalCoupler, SplitRatioCorrect) {
  DirectionalCoupler dc(0.25);
  const auto out = dc.couple(Complex{1.0, 0.0}, Complex{0.0, 0.0});
  EXPECT_NEAR(std::norm(out[0]), 0.75, 1e-12);
  EXPECT_NEAR(std::norm(out[1]), 0.25, 1e-12);
}

TEST(DirectionalCoupler, RejectsDegenerateRatio) {
  EXPECT_THROW(DirectionalCoupler(0.0), std::invalid_argument);
  EXPECT_THROW(DirectionalCoupler(1.0), std::invalid_argument);
}

TEST(YSplitter, SplitsEvenlyWithExcessLoss) {
  YSplitter split(0.3);
  const auto out = split.split(Complex{1.0, 0.0});
  EXPECT_NEAR(std::norm(out[0]), std::norm(out[1]), 1e-15);
  const double total = std::norm(out[0]) + std::norm(out[1]);
  EXPECT_NEAR(total, std::pow(10.0, -0.3 / 10.0), 1e-9);
}

TEST(MachZehnder, BalancedArmsActAsCrossCoupler) {
  // Equal arms, 50/50 couplers: input on port 0 exits entirely on port 1
  // (the classic MZI cross state), up to the arm loss.
  MachZehnder mzi(100e-6, 100e-6, 0.5, 0.5, /*loss_db_per_cm=*/0.0);
  const auto out = mzi.transfer(OperatingPoint{}, Complex{1.0, 0.0},
                                Complex{0.0, 0.0});
  EXPECT_NEAR(std::norm(out[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::norm(out[1]), 1.0, 1e-12);
}

TEST(MachZehnder, UnbalancedArmsAreWavelengthSelective) {
  MachZehnder mzi(100e-6, 160e-6, 0.5, 0.5, 0.0);
  OperatingPoint op1{1.55e-6, 300.0};
  OperatingPoint op2{1.551e-6, 300.0};
  const auto o1 = mzi.transfer(op1, Complex{1.0, 0.0}, Complex{0.0, 0.0});
  const auto o2 = mzi.transfer(op2, Complex{1.0, 0.0}, Complex{0.0, 0.0});
  EXPECT_GT(std::abs(std::norm(o1[0]) - std::norm(o2[0])), 1e-3);
}

TEST(Ring, AllPassIsAllPassWhenLossless) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  MicroringAllPass ring(rp);
  for (double wl : {1.549e-6, 1.55e-6, 1.5507e-6}) {
    const Complex h = ring.through(OperatingPoint{wl, 300.0});
    EXPECT_NEAR(std::abs(h), 1.0, 1e-9) << wl;
  }
}

TEST(Ring, LossyRingHasResonanceNotch) {
  RingParameters rp;
  rp.loss_db_per_cm = 3.0;
  rp.power_coupling_in = 0.005;  // near-critical coupling -> deep notch
  MicroringAllPass ring(rp);
  // Scan beyond one FSR (~9.1 nm for a 10 um ring) and find the
  // transmission minimum and maximum.
  double min_t = 1e9, max_t = -1e9;
  for (int i = 0; i < 12000; ++i) {
    const double wl = 1.545e-6 + i * 1e-12;
    const double t = std::norm(ring.through(OperatingPoint{wl, 300.0}));
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_LT(min_t, 0.5);   // a real notch
  EXPECT_GT(max_t, 0.9);   // nearly transparent off resonance
}

TEST(Ring, ResonanceShiftsWithTemperature) {
  RingParameters rp;
  rp.power_coupling_in = 0.05;
  MicroringAllPass ring(rp);
  // Locate the notch at two temperatures; it must move. The second search
  // is local (±2 nm around the first notch) so we track the *same*
  // resonance order rather than a neighbour one FSR away.
  auto find_notch = [&](double temp, double center, double halfwidth) {
    double best_wl = 0.0, best_t = 1e9;
    const int steps = static_cast<int>(2.0 * halfwidth / 1e-12);
    for (int i = 0; i < steps; ++i) {
      const double wl = center - halfwidth + i * 1e-12;
      const double t = std::norm(ring.through(OperatingPoint{wl, temp}));
      if (t < best_t) { best_t = t; best_wl = wl; }
    }
    return best_wl;
  };
  const double notch_300 = find_notch(300.0, 1.551e-6, 6e-9);
  const double notch_310 = find_notch(310.0, notch_300 + 0.7e-9, 2e-9);
  // Non-dispersive model: dlambda/dT = lambda * (dn/dT)/n_eff
  //                                   ~ 1550nm * 1.86e-4/2.4 ~ 120 pm/K.
  const double shift_pm_per_k = (notch_310 - notch_300) / 10.0 * 1e12;
  EXPECT_GT(shift_pm_per_k, 80.0);
  EXPECT_LT(shift_pm_per_k, 160.0);
}

TEST(Ring, AddDropEnergySplitsBetweenPorts) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  rp.power_coupling_in = 0.1;
  rp.power_coupling_drop = 0.1;
  MicroringAddDrop ring(rp);
  // Lossless symmetric add-drop: |through|^2 + |drop|^2 == 1 at every
  // wavelength.
  for (int i = 0; i < 50; ++i) {
    const OperatingPoint op{1.549e-6 + i * 40e-12, 300.0};
    const double total = std::norm(ring.through(op)) + std::norm(ring.drop(op));
    EXPECT_NEAR(total, 1.0, 1e-9) << i;
  }
}

TEST(Ring, AddDropDropPeaksAtThroughNotch) {
  RingParameters rp;
  rp.power_coupling_in = 0.08;
  rp.power_coupling_drop = 0.08;
  MicroringAddDrop ring(rp);
  double min_through = 1e9, drop_at_min = 0.0;
  for (int i = 0; i < 12000; ++i) {
    const OperatingPoint op{1.545e-6 + i * 1e-12, 300.0};
    const double t = std::norm(ring.through(op));
    if (t < min_through) {
      min_through = t;
      drop_at_min = std::norm(ring.drop(op));
    }
  }
  EXPECT_GT(drop_at_min, 0.5);
}

TEST(Ring, RejectsBadParameters) {
  RingParameters rp;
  rp.radius = -1.0;
  EXPECT_THROW(MicroringAllPass{rp}, std::invalid_argument);
  RingParameters rp2;
  rp2.power_coupling_in = 1.5;
  EXPECT_THROW(MicroringAddDrop{rp2}, std::invalid_argument);
}

TEST(RingTimeDomain, ImpulseResponseDecaysGeometrically) {
  RingParameters rp;
  rp.power_coupling_in = 0.3;
  MicroringAllPass ring(rp);
  OperatingPoint op;
  RingTimeDomain td(ring, op, ring.round_trip_delay());
  ASSERT_EQ(td.delay_samples(), 1u);

  // Drive an impulse and observe the ringing tail.
  std::vector<double> tail;
  tail.push_back(std::abs(td.step(Complex{1.0, 0.0})));
  for (int i = 0; i < 10; ++i) {
    tail.push_back(std::abs(td.step(Complex{0.0, 0.0})));
  }
  // Tail samples after the first echo decay with constant ratio a*t.
  ASSERT_GT(tail[2], 0.0);
  const double ratio1 = tail[3] / tail[2];
  const double ratio2 = tail[4] / tail[3];
  EXPECT_NEAR(ratio1, ratio2, 1e-9);
  EXPECT_LT(ratio1, 1.0);
}

TEST(RingTimeDomain, EnergyConservedWhenLossless) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  rp.power_coupling_in = 0.5;
  MicroringAllPass ring(rp);
  RingTimeDomain td(ring, OperatingPoint{}, ring.round_trip_delay());
  double in_energy = 0.0, out_energy = 0.0;
  rng::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Complex in = i < 100 ? Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)}
                               : Complex{0.0, 0.0};
    in_energy += std::norm(in);
    out_energy += std::norm(td.step(in));
  }
  EXPECT_NEAR(out_energy / in_energy, 1.0, 1e-6);
}

TEST(RingTimeDomain, ResetClearsState) {
  RingParameters rp;
  MicroringAllPass ring(rp);
  RingTimeDomain td(ring, OperatingPoint{}, ring.round_trip_delay());
  td.step(Complex{1.0, 0.0});
  td.reset();
  // After reset, a zero input yields exactly zero output.
  EXPECT_EQ(std::abs(td.step(Complex{0.0, 0.0})), 0.0);
}

TEST(Fabrication, DeterministicPerDevice) {
  FabricationModel fab(1234, 7);
  const auto d1 = fab.sample(3);
  const auto d2 = fab.sample(3);
  EXPECT_EQ(d1.d_effective_index, d2.d_effective_index);
  EXPECT_EQ(d1.d_coupling_ratio, d2.d_coupling_ratio);
}

TEST(Fabrication, DistinctDevicesDiffer) {
  FabricationModel fab_a(1234, 7);
  FabricationModel fab_b(1234, 8);
  EXPECT_NE(fab_a.sample(0).d_effective_index,
            fab_b.sample(0).d_effective_index);
}

TEST(Fabrication, SigmaScalesSpread) {
  VariationSigmas tight;
  tight.effective_index = 1e-6;
  VariationSigmas loose;
  loose.effective_index = 1e-2;
  double tight_sum = 0.0, loose_sum = 0.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    tight_sum += std::abs(
        FabricationModel(1, i, tight).sample(0).d_effective_index);
    loose_sum += std::abs(
        FabricationModel(1, i, loose).sample(0).d_effective_index);
  }
  EXPECT_GT(loose_sum, 100.0 * tight_sum);
}

TEST(Thermal, EnvironmentStaysNearMean) {
  ThermalEnvironment env(300.0, 0.05, 0.02, 9);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) sum += env.step();
  EXPECT_NEAR(sum / 2000.0, 300.0, 1.0);
}

TEST(Thermal, SensorAccuracyBoundsError) {
  PhotonicTemperatureSensor sensor(0.1, 10);
  double sq = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double err = sensor.read(305.0) - 305.0;
    sq += err * err;
  }
  EXPECT_NEAR(std::sqrt(sq / 5000.0), 0.1, 0.02);
}

TEST(Thermal, ControllerRejectsAmbientSwing) {
  PhotonicTemperatureSensor sensor(0.05, 11);
  TemperatureController ctrl(300.0, 0.95, sensor);
  // 10 K ambient excursion shrinks to ~0.5 K at the die.
  const double die = ctrl.regulate(310.0);
  EXPECT_NEAR(die, 300.5, 0.3);
}

}  // namespace
}  // namespace neuropuls::photonic
