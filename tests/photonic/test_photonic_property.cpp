// Photonic-substrate property sweeps: physical invariants (passivity,
// reciprocity-style symmetries, frequency/time-domain agreement) must
// hold over grids of geometries, wavelengths, and fabrication draws —
// not just at the defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "photonic/circuit.hpp"
#include "photonic/ring.hpp"

namespace neuropuls::photonic {
namespace {

// ---- Passivity over a geometry x seed grid -----------------------------------

struct MeshCase {
  std::size_t ports;
  std::size_t layers;
  std::uint64_t device;
};

class MeshGrid : public ::testing::TestWithParam<MeshCase> {};

TEST_P(MeshGrid, NeverAmplifies) {
  const auto p = GetParam();
  ScramblerDesign design;
  design.ports = p.ports;
  design.layers = p.layers;
  ScramblerCircuit circuit(design, FabricationModel(2025, p.device));

  rng::Xoshiro256 rng(p.device + 1);
  for (int trial = 0; trial < 5; ++trial) {
    PortVector in(p.ports);
    for (auto& e : in) e = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    for (double wl : {1.549e-6, 1.55e-6, 1.552e-6}) {
      const auto out = circuit.evaluate(OperatingPoint{wl, 300.0}, in);
      EXPECT_LE(total_power(out), total_power(in) * (1.0 + 1e-9))
          << "wl=" << wl;
    }
  }
}

TEST_P(MeshGrid, LinearInInputField) {
  // The passive circuit is linear: evaluate(a*x) == a*evaluate(x).
  const auto p = GetParam();
  ScramblerDesign design;
  design.ports = p.ports;
  design.layers = p.layers;
  ScramblerCircuit circuit(design, FabricationModel(2025, p.device));
  PortVector in(p.ports, Complex{0.0, 0.0});
  in[0] = Complex{0.7, -0.2};
  const OperatingPoint op;
  const auto base = circuit.evaluate(op, in);
  const Complex scale{1.5, 0.5};
  PortVector scaled = in;
  for (auto& e : scaled) e *= scale;
  const auto scaled_out = circuit.evaluate(op, scaled);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(std::abs(scaled_out[i] - scale * base[i]), 0.0, 1e-12);
  }
}

TEST_P(MeshGrid, TimeDomainConvergesToSteadyState) {
  const auto p = GetParam();
  ScramblerDesign design;
  design.ports = p.ports;
  design.layers = p.layers;
  ScramblerCircuit circuit(design, FabricationModel(2025, p.device));
  const OperatingPoint op;
  PortVector in(p.ports, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto steady = circuit.evaluate(op, in);

  TimeDomainScrambler td(circuit, op, 40e-12);
  PortVector last;
  for (int i = 0; i < 2500; ++i) last = td.step(in);
  for (std::size_t port = 0; port < p.ports; ++port) {
    EXPECT_NEAR(std::norm(last[port]), std::norm(steady[port]), 1e-2)
        << "port " << port;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeshGrid,
    ::testing::Values(MeshCase{2, 1, 0}, MeshCase{4, 3, 1}, MeshCase{8, 6, 2},
                      MeshCase{8, 2, 3}, MeshCase{16, 4, 4}),
    [](const ::testing::TestParamInfo<MeshCase>& info) {
      return "p" + std::to_string(info.param.ports) + "_l" +
             std::to_string(info.param.layers) + "_d" +
             std::to_string(info.param.device);
    });

// ---- Ring invariants over coupling sweep ---------------------------------------

class RingCoupling : public ::testing::TestWithParam<double> {};

TEST_P(RingCoupling, LosslessAllPassIsUnitModulus) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  rp.power_coupling_in = GetParam();
  MicroringAllPass ring(rp);
  for (int i = 0; i < 40; ++i) {
    const OperatingPoint op{1.548e-6 + i * 100e-12, 300.0};
    EXPECT_NEAR(std::abs(ring.through(op)), 1.0, 1e-9);
  }
}

TEST_P(RingCoupling, LosslessAddDropConservesPower) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  rp.power_coupling_in = GetParam();
  rp.power_coupling_drop = GetParam();
  MicroringAddDrop ring(rp);
  for (int i = 0; i < 40; ++i) {
    const OperatingPoint op{1.548e-6 + i * 100e-12, 300.0};
    EXPECT_NEAR(std::norm(ring.through(op)) + std::norm(ring.drop(op)), 1.0,
                1e-9);
  }
}

TEST_P(RingCoupling, TimeDomainEnergyConservedLossless) {
  RingParameters rp;
  rp.loss_db_per_cm = 0.0;
  rp.power_coupling_in = GetParam();
  MicroringAllPass ring(rp);
  RingTimeDomain td(ring, OperatingPoint{}, ring.round_trip_delay());
  rng::Xoshiro256 rng(7);
  double in_energy = 0.0, out_energy = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const Complex in = i < 64 ? Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)}
                              : Complex{0.0, 0.0};
    in_energy += std::norm(in);
    out_energy += std::norm(td.step(in));
  }
  EXPECT_NEAR(out_energy / in_energy, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Couplings, RingCoupling,
                         ::testing::Values(0.02, 0.1, 0.3, 0.5, 0.8));

// ---- Thermo-optic consistency ----------------------------------------------------

class TemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureSweep, WaveguidePhaseMatchesThermoOpticSlope) {
  const double temp = GetParam();
  const double length = 500e-6;
  Waveguide wg(length, 0.0);
  const OperatingPoint ref{kDefaultWavelength, kReferenceTemperature};
  const OperatingPoint hot{kDefaultWavelength, temp};
  // Expected extra phase: 2 pi dn/dT (T - T0) L / lambda, modulo 2 pi.
  const double expected =
      2.0 * M_PI * kSiliconThermoOptic * (temp - kReferenceTemperature) *
      length / kDefaultWavelength;
  double got = std::arg(wg.transfer(ref)) - std::arg(wg.transfer(hot));
  const double two_pi = 2.0 * M_PI;
  double diff = std::fmod(got - expected, two_pi);
  if (diff > M_PI) diff -= two_pi;
  if (diff < -M_PI) diff += two_pi;
  EXPECT_NEAR(diff, 0.0, 1e-6) << "T=" << temp;
}

INSTANTIATE_TEST_SUITE_P(Kelvin, TemperatureSweep,
                         ::testing::Values(295.0, 301.0, 310.0, 325.0, 350.0));

}  // namespace
}  // namespace neuropuls::photonic
