// Durable CrpDatabase (ctest labels: io, concurrency): group-commit WAL
// round trips, snapshot compaction, re-sharding on load, deterministic
// post-recovery take() order, lock_stats across restarts, and the
// fsync-per-op comparison mode. The crash-point sweeps (truncation /
// corruption at every byte) live in tests/chaos/test_crp_crash.cpp; this
// file covers the clean-shutdown and happy-path recovery contracts.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "puf/crp_db.hpp"
#include "puf/crp_wal.hpp"

namespace neuropuls::puf {
namespace {

namespace io = common::io;

Crp make_crp(std::uint32_t i) {
  Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i),
                   static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x5A, 0xC3, 0x0F, 0x99};
  crp.response = {static_cast<std::uint8_t>(i * 7 + 1),
                  static_cast<std::uint8_t>(i * 13 + 5)};
  return crp;
}

CrpDurabilityOptions durable_in(const std::string& dir) {
  CrpDurabilityOptions options;
  options.directory = dir;
  return options;
}

/// Drains both stores serially and requires identical challenge order —
/// the strongest form of "recovery reproduced the entry layout".
void expect_same_take_order(CrpDatabase& recovered, CrpDatabase& reference) {
  for (;;) {
    const std::optional<Crp> a = recovered.take();
    const std::optional<Crp> b = reference.take();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->challenge, b->challenge);
    EXPECT_EQ(a->response, b->response);
  }
}

TEST(CrpStore, EmptyDirectoryOptionsStayInMemory) {
  CrpDatabase db(4, CrpDurabilityOptions{});
  EXPECT_FALSE(db.durable());
  db.insert(make_crp(1));
  EXPECT_EQ(db.size(), 1u);
  db.sync();      // no-ops, must not throw
  db.snapshot();
  EXPECT_EQ(db.recovery_stats().wal_records, 0u);
}

TEST(CrpStore, WalReplayRoundTripsStateAndHealth) {
  const io::TempDir dir("np-crp-store");
  constexpr std::uint32_t kCount = 32;
  std::set<Challenge> taken;
  std::vector<Challenge> survivors;
  {
    CrpDatabase db(4, durable_in(dir.path()));
    ASSERT_TRUE(db.durable());
    for (std::uint32_t i = 0; i < kCount; ++i) db.insert(make_crp(i));
    for (int i = 0; i < 5; ++i) {
      const auto crp = db.take();
      ASSERT_TRUE(crp.has_value());
      taken.insert(crp->challenge);
    }
    // Health targets must still be in the store (updates on consumed
    // challenges are no-ops), so pick them from the survivors.
    for (std::uint32_t i = 0; i < kCount && survivors.size() < 2; ++i) {
      const Challenge challenge = make_crp(i).challenge;
      if (db.lookup(challenge).has_value()) survivors.push_back(challenge);
    }
    ASSERT_EQ(survivors.size(), 2u);
    db.record_success(survivors[0]);
    db.record_success(survivors[0]);
    db.record_failure(survivors[1]);
  }  // clean shutdown drains + fsyncs the WAL

  CrpDatabase db(4, durable_in(dir.path()));
  EXPECT_EQ(db.size(), kCount - 5);
  const CrpRecoveryStats stats = db.recovery_stats();
  EXPECT_FALSE(stats.resharded);
  EXPECT_TRUE(stats.parallel_replay);
  EXPECT_EQ(stats.torn_bytes, 0u) << "clean shutdown must leave no torn tail";
  EXPECT_EQ(stats.wal_records, kCount + 5 + 3);
  EXPECT_EQ(stats.replayed_takes, 5u);
  for (const Challenge& challenge : taken) {
    EXPECT_FALSE(db.lookup(challenge).has_value())
        << "consumed CRP resurrected by replay";
  }
  const auto healthy = db.health(survivors[0]);
  ASSERT_TRUE(healthy.has_value());
  EXPECT_EQ(healthy->successes, 2u);
  const auto failing = db.health(survivors[1]);
  ASSERT_TRUE(failing.has_value());
  EXPECT_EQ(failing->failures, 1u);
  EXPECT_EQ(failing->consecutive_failures, 1u);
}

TEST(CrpStore, QuarantineStateSurvivesRestartIndependentOfThreshold) {
  const io::TempDir dir("np-crp-store");
  {
    CrpDatabase db(1, durable_in(dir.path()));
    db.set_quarantine_threshold(2);
    for (std::uint32_t i = 0; i < 4; ++i) db.insert(make_crp(i));
    db.record_failure(make_crp(2).challenge);
    db.record_failure(make_crp(2).challenge);  // quarantined at 2
    EXPECT_EQ(db.quarantined(), 1u);
  }
  // Health records carry resulting counters, so replay under the default
  // (higher) threshold must still reproduce the quarantine flag.
  CrpDatabase db(1, durable_in(dir.path()));
  EXPECT_EQ(db.quarantined(), 1u);
  EXPECT_FALSE(db.lookup(make_crp(2).challenge).has_value());
}

TEST(CrpStore, SnapshotCompactsWalAndPreservesState) {
  const io::TempDir dir("np-crp-store");
  constexpr std::uint32_t kCount = 24;
  {
    CrpDatabase db(2, durable_in(dir.path()));
    for (std::uint32_t i = 0; i < kCount; ++i) db.insert(make_crp(i));
    ASSERT_TRUE(db.take().has_value());
    db.snapshot();
    // Post-snapshot mutations land in the new generation's WAL.
    db.insert(make_crp(100));
  }
  CrpDatabase db(2, durable_in(dir.path()));
  EXPECT_EQ(db.size(), kCount);  // 24 - 1 take + 1 late insert
  const CrpRecoveryStats stats = db.recovery_stats();
  EXPECT_GE(stats.generation, 1u);
  EXPECT_EQ(stats.snapshot_entries, kCount - 1);
  EXPECT_EQ(stats.wal_records, 1u) << "snapshot should have trimmed the WAL";
}

TEST(CrpStore, AutomaticSnapshotTriggersAtWalThreshold) {
  const io::TempDir dir("np-crp-store");
  CrpDurabilityOptions options = durable_in(dir.path());
  options.snapshot_wal_bytes = 512;
  {
    CrpDatabase db(1, options);
    for (std::uint32_t i = 0; i < 64; ++i) db.insert(make_crp(i));
    db.sync();
  }
  CrpDatabase db(1, durable_in(dir.path()));
  EXPECT_EQ(db.size(), 64u);
  EXPECT_GE(db.recovery_stats().generation, 1u)
      << "64 inserts x ~40 byte records should have crossed 512 WAL bytes";
  EXPECT_GT(db.recovery_stats().snapshot_entries, 0u);
}

TEST(CrpStore, RecoveryWithDifferentShardCountRehashes) {
  const io::TempDir dir("np-crp-store");
  constexpr std::uint32_t kCount = 48;
  {
    CrpDatabase db(4, durable_in(dir.path()));
    for (std::uint32_t i = 0; i < kCount; ++i) db.insert(make_crp(i));
    ASSERT_TRUE(db.take().has_value());
  }
  {
    CrpDatabase db(2, durable_in(dir.path()));
    EXPECT_EQ(db.shard_count(), 2u);
    EXPECT_EQ(db.size(), kCount - 1);
    EXPECT_TRUE(db.recovery_stats().resharded);
    EXPECT_FALSE(db.recovery_stats().parallel_replay);
    EXPECT_EQ(db.recovery_stats().source_shard_count, 4u);
    // Every surviving CRP must be reachable through the new layout.
    std::size_t found = 0;
    for (std::uint32_t i = 0; i <= 100; ++i) {
      if (db.lookup(make_crp(i).challenge).has_value()) ++found;
    }
    EXPECT_EQ(found, kCount - 1);
  }
  // The re-shard rolled forward to a compacted snapshot: a second open
  // at the same count replays it in parallel with an empty WAL.
  CrpDatabase db(2, durable_in(dir.path()));
  EXPECT_FALSE(db.recovery_stats().resharded);
  EXPECT_TRUE(db.recovery_stats().parallel_replay);
  EXPECT_EQ(db.recovery_stats().snapshot_entries, kCount - 1);
  EXPECT_EQ(db.recovery_stats().wal_records, 0u);
}

// The satellite regression: with one shard, a store that went through
// quarantine-driven compaction, eviction, restart, and replay must
// serve the exact take() sequence of a never-restarted store fed the
// same operations.
TEST(CrpStore, SingleShardPostRecoveryTakeOrderMatchesNeverRestarted) {
  const io::TempDir dir("np-crp-store");
  CrpDatabase reference(1);  // in-memory twin, never restarted
  {
    CrpDatabase db(1, durable_in(dir.path()));
    for (CrpDatabase* store : {&db, &reference}) {
      store->set_quarantine_threshold(2);
      for (std::uint32_t i = 0; i < 10; ++i) store->insert(make_crp(i));
      // Quarantine two entries mid-vector, evict them (swap-with-back
      // compaction reorders the tail), take a couple, insert more.
      for (int r = 0; r < 2; ++r) {
        store->record_failure(make_crp(3).challenge);
        store->record_failure(make_crp(6).challenge);
      }
      EXPECT_EQ(store->evict_quarantined(), 2u);
      EXPECT_TRUE(store->take().has_value());
      EXPECT_TRUE(store->take().has_value());
      for (std::uint32_t i = 20; i < 24; ++i) store->insert(make_crp(i));
    }
  }
  CrpDatabase recovered(1, durable_in(dir.path()));
  EXPECT_EQ(recovered.size(), reference.size());
  expect_same_take_order(recovered, reference);
}

// Same regression through a snapshot+WAL boundary: the snapshot stores
// entries in storage order, so the order survives compaction too.
TEST(CrpStore, TakeOrderSurvivesSnapshotBoundary) {
  const io::TempDir dir("np-crp-store");
  CrpDatabase reference(1);
  {
    CrpDatabase db(1, durable_in(dir.path()));
    for (CrpDatabase* store : {&db, &reference}) {
      for (std::uint32_t i = 0; i < 12; ++i) store->insert(make_crp(i));
      EXPECT_TRUE(store->take().has_value());
    }
    db.snapshot();
    for (CrpDatabase* store : {&db, &reference}) {
      EXPECT_TRUE(store->take().has_value());
      for (std::uint32_t i = 30; i < 33; ++i) store->insert(make_crp(i));
    }
  }
  CrpDatabase recovered(1, durable_in(dir.path()));
  expect_same_take_order(recovered, reference);
}

// Deterministic cursor restore across shards: after a quiescent
// snapshot+restart, the round-robin take() rotation continues exactly
// where the reference store's does.
TEST(CrpStore, TakeCursorRestoredDeterministically) {
  const io::TempDir dir("np-crp-store");
  CrpDatabase reference(2);
  {
    CrpDatabase db(2, durable_in(dir.path()));
    for (CrpDatabase* store : {&db, &reference}) {
      for (std::uint32_t i = 0; i < 16; ++i) store->insert(make_crp(i));
      for (int t = 0; t < 3; ++t) EXPECT_TRUE(store->take().has_value());
    }
    db.snapshot();  // manifest records the cursor at a quiescent point
  }
  CrpDatabase recovered(2, durable_in(dir.path()));
  expect_same_take_order(recovered, reference);
}

// lock_stats are process-local diagnostics: a restart resets them, and
// shard_takes tracks the *new* layout after a re-shard.
TEST(CrpStore, LockStatsResetAcrossRecoveryAndResharding) {
  const io::TempDir dir("np-crp-store");
  {
    CrpDatabase db(4, durable_in(dir.path()));
    for (std::uint32_t i = 0; i < 16; ++i) db.insert(make_crp(i));
    for (int t = 0; t < 8; ++t) ASSERT_TRUE(db.take().has_value());
    EXPECT_EQ(db.lock_stats().takes, 8u);
    EXPECT_EQ(db.lock_stats().shard_takes.size(), 4u);
  }
  {
    CrpDatabase db(4, durable_in(dir.path()));
    const CrpStoreStats stats = db.lock_stats();
    EXPECT_EQ(stats.takes, 0u) << "takes counter must not replay";
    EXPECT_EQ(stats.take_steals, 0u);
    EXPECT_EQ(stats.shard_takes.size(), 4u);
    ASSERT_TRUE(db.take().has_value());
    EXPECT_EQ(db.lock_stats().takes, 1u);
  }
  // Re-shard: the stats vector follows the configured layout.
  CrpDatabase db(2, durable_in(dir.path()));
  EXPECT_EQ(db.lock_stats().shard_takes.size(), 2u);
  EXPECT_EQ(db.lock_stats().takes, 0u);
}

TEST(CrpStore, FsyncPerOpModeIsDurableWithoutSync) {
  const io::TempDir dir("np-crp-store");
  {
    CrpDurabilityOptions options = durable_in(dir.path());
    options.mode = CrpDurabilityOptions::Mode::kFsyncPerOp;
    CrpDatabase db(2, options);
    for (std::uint32_t i = 0; i < 8; ++i) db.insert(make_crp(i));
    ASSERT_TRUE(db.take().has_value());
    // No sync(), no snapshot: every op already waited for its fsync.
  }
  CrpDatabase db(2, durable_in(dir.path()));
  EXPECT_EQ(db.size(), 7u);
  EXPECT_EQ(db.recovery_stats().wal_records, 9u);
}

TEST(CrpStore, SyncIsADurabilityBarrier) {
  const io::TempDir dir("np-crp-store");
  CrpDurabilityOptions options = durable_in(dir.path());
  // A huge batch + long window: without sync() these appends would sit
  // in the pending buffers well past the test's lifetime.
  options.batch_bytes = 64 * 1024 * 1024;
  options.flush_interval = std::chrono::microseconds(60 * 1000 * 1000);
  options.durable_take = false;
  CrpDatabase db(1, options);
  for (std::uint32_t i = 0; i < 6; ++i) db.insert(make_crp(i));
  db.sync();
  // The WAL file must already hold all six records, while the store is
  // still open (no destructor drain involved).
  const std::string wal_file = wal::wal_path(dir.path(), 0, 0);
  ASSERT_TRUE(io::file_exists(wal_file));
  const auto decoded = wal::decode_wal(io::read_file(wal_file));
  EXPECT_EQ(decoded.records.size(), 6u);
  EXPECT_EQ(decoded.torn_bytes, 0u);
}

TEST(CrpStore, KeyedTakeConsumesExactlyOnce) {
  CrpDatabase db(4);
  for (std::uint32_t i = 0; i < 12; ++i) db.insert(make_crp(i));
  const Challenge target = make_crp(7).challenge;

  const std::optional<Crp> taken = db.take(target);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->challenge, target);
  EXPECT_EQ(taken->response, make_crp(7).response);
  EXPECT_EQ(db.size(), 11u);
  // One-time use: the same key never serves twice, and the blind
  // round-robin take() never resurrects it either.
  EXPECT_FALSE(db.take(target).has_value());
  EXPECT_FALSE(db.lookup(target).has_value());
  std::size_t drained = 0;
  while (const auto crp = db.take()) {
    EXPECT_NE(crp->challenge, target);
    ++drained;
  }
  EXPECT_EQ(drained, 11u);
  // Unknown keys are a clean miss.
  EXPECT_FALSE(db.take(make_crp(99).challenge).has_value());
}

TEST(CrpStore, KeyedTakeRefusesQuarantined) {
  CrpDatabase db(2);
  db.set_quarantine_threshold(1);
  for (std::uint32_t i = 0; i < 4; ++i) db.insert(make_crp(i));
  db.record_failure(make_crp(2).challenge);
  EXPECT_FALSE(db.take(make_crp(2).challenge).has_value());
  // Still present (quarantined, not consumed): eviction finds it.
  EXPECT_TRUE(db.health(make_crp(2).challenge).has_value());
  EXPECT_EQ(db.evict_quarantined(), 1u);
}

TEST(CrpStore, KeyedTakeIsDurable) {
  const io::TempDir dir("np-crp-store");
  {
    CrpDatabase db(2, durable_in(dir.path()));
    for (std::uint32_t i = 0; i < 8; ++i) db.insert(make_crp(i));
    ASSERT_TRUE(db.take(make_crp(3).challenge).has_value());
    ASSERT_TRUE(db.take(make_crp(5).challenge).has_value());
  }
  CrpDatabase db(2, durable_in(dir.path()));
  EXPECT_EQ(db.size(), 6u);
  // The consumed pairs stay consumed across recovery.
  EXPECT_FALSE(db.health(make_crp(3).challenge).has_value());
  EXPECT_FALSE(db.health(make_crp(5).challenge).has_value());
  EXPECT_TRUE(db.lookup(make_crp(4).challenge).has_value());
}

TEST(CrpStore, InsertBatchMatchesSerialInsertsAndIsDurable) {
  // Batch inserts across shards land exactly like serial inserts —
  // same entries, same take order — and replay after a restart.
  const io::TempDir batch_dir("np-crp-store-batch");
  std::vector<Crp> batch;
  for (std::uint32_t i = 0; i < 20; ++i) batch.push_back(make_crp(i));
  {
    CrpDatabase db(4, durable_in(batch_dir.path()));
    db.insert_batch(std::move(batch));
    EXPECT_EQ(db.size(), 20u);
  }
  CrpDatabase recovered(4, durable_in(batch_dir.path()));
  EXPECT_EQ(recovered.size(), 20u);

  CrpDatabase reference(4);
  for (std::uint32_t i = 0; i < 20; ++i) reference.insert(make_crp(i));
  expect_same_take_order(recovered, reference);
}

TEST(CrpStore, InsertBatchEmptyIsANoOp) {
  CrpDatabase db(4);
  db.insert_batch({});
  EXPECT_TRUE(db.empty());
}

TEST(CrpStore, DirectoryWithFilesButNoManifestFailsCleanly) {
  const io::TempDir dir("np-crp-store");
  io::atomic_write_file(dir.path() + "/shard-0000-000000.wal",
                        crypto::Bytes{1, 2, 3});
  EXPECT_THROW(CrpDatabase(1, durable_in(dir.path())), wal::CrpStoreError);
}

TEST(CrpStore, CorruptManifestFailsCleanly) {
  const io::TempDir dir("np-crp-store");
  { CrpDatabase db(1, durable_in(dir.path())); db.insert(make_crp(1)); }
  crypto::Bytes manifest = io::read_file(wal::manifest_path(dir.path()));
  manifest[manifest.size() / 2] ^= 0xFF;
  io::atomic_write_file(wal::manifest_path(dir.path()), manifest);
  EXPECT_THROW(CrpDatabase(1, durable_in(dir.path())), wal::CrpStoreError);
}

}  // namespace
}  // namespace neuropuls::puf
