// Property sweeps across PUF configuration grids: the statistical
// invariants (determinism, sizes, uniformity bounds, device separation)
// must hold for *every* geometry, not just the default ones.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/chacha20.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/sram_puf.hpp"

namespace neuropuls::puf {
namespace {

// ---- Photonic PUF geometry grid --------------------------------------------

struct PhotonicGeometry {
  std::size_t ports;
  std::size_t layers;
  std::size_t challenge_bits;
};

class PhotonicGrid : public ::testing::TestWithParam<PhotonicGeometry> {
 protected:
  PhotonicPufConfig config() const {
    PhotonicPufConfig cfg;
    cfg.design.ports = GetParam().ports;
    cfg.design.layers = GetParam().layers;
    cfg.challenge_bits = GetParam().challenge_bits;
    cfg.calibration_challenges = 31;
    return cfg;
  }
};

TEST_P(PhotonicGrid, SizesAndDeterminism) {
  const auto cfg = config();
  PhotonicPuf puf(cfg, 500, 0);
  EXPECT_EQ(puf.response_bits(), cfg.challenge_bits * cfg.design.ports / 2);
  const Challenge c(puf.challenge_bytes(), 0x6C);
  EXPECT_EQ(puf.evaluate_noiseless(c), puf.evaluate_noiseless(c));
  EXPECT_EQ(puf.evaluate(c).size(), puf.response_bytes());
}

TEST_P(PhotonicGrid, DevicesSeparate) {
  const auto cfg = config();
  PhotonicPuf a(cfg, 500, 0), b(cfg, 500, 1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("grid"));
  double inter = 0.0;
  for (int t = 0; t < 4; ++t) {
    const Challenge c = rng.generate(a.challenge_bytes());
    inter += crypto::fractional_hamming_distance(a.evaluate_noiseless(c),
                                                 b.evaluate_noiseless(c));
  }
  EXPECT_GT(inter / 4.0, 0.25);
}

TEST_P(PhotonicGrid, ReliabilityBounded) {
  const auto cfg = config();
  PhotonicPuf puf(cfg, 500, 2);
  const Challenge c(puf.challenge_bytes(), 0x39);
  const Response ref = puf.evaluate_noiseless(c);
  EXPECT_LT(intra_distance(puf, c, ref, 5), 0.15);
}

TEST_P(PhotonicGrid, UniformityBounded) {
  const auto cfg = config();
  PhotonicPuf puf(cfg, 500, 3);
  crypto::ChaChaDrbg rng(crypto::bytes_of("uni-grid"));
  double ones = 0.0;
  double bits = 0.0;
  for (int t = 0; t < 6; ++t) {
    const Response r = puf.evaluate_noiseless(rng.generate(puf.challenge_bytes()));
    ones += static_cast<double>(crypto::popcount(r));
    bits += 8.0 * static_cast<double>(r.size());
  }
  EXPECT_NEAR(ones / bits, 0.5, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PhotonicGrid,
    ::testing::Values(PhotonicGeometry{4, 2, 16}, PhotonicGeometry{4, 5, 16},
                      PhotonicGeometry{8, 3, 16}, PhotonicGeometry{8, 6, 32},
                      PhotonicGeometry{16, 4, 16}),
    [](const ::testing::TestParamInfo<PhotonicGeometry>& info) {
      return "p" + std::to_string(info.param.ports) + "_l" +
             std::to_string(info.param.layers) + "_c" +
             std::to_string(info.param.challenge_bits);
    });

// ---- Arbiter grid ------------------------------------------------------------

struct ArbiterGeometry {
  std::size_t stages;
  std::size_t xor_chains;
};

class ArbiterGrid : public ::testing::TestWithParam<ArbiterGeometry> {};

TEST_P(ArbiterGrid, BalanceAndSeparation) {
  ArbiterPufConfig cfg;
  cfg.stages = GetParam().stages;
  cfg.xor_chains = GetParam().xor_chains;
  ArbiterPuf a(cfg, 1), b(cfg, 2);
  crypto::ChaChaDrbg rng(crypto::bytes_of("arb-grid"));
  int ones = 0, diff = 0;
  constexpr int kN = 1200;
  for (int i = 0; i < kN; ++i) {
    const Challenge c = rng.generate(a.challenge_bytes());
    const auto ra = a.evaluate_noiseless(c);
    ones += (ra[0] >> 7) & 1;
    diff += (ra != b.evaluate_noiseless(c));
  }
  EXPECT_NEAR(ones / static_cast<double>(kN), 0.5, 0.08);
  EXPECT_NEAR(diff / static_cast<double>(kN), 0.5, 0.09);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ArbiterGrid,
    ::testing::Values(ArbiterGeometry{32, 1}, ArbiterGeometry{64, 1},
                      ArbiterGeometry{128, 1}, ArbiterGeometry{64, 2},
                      ArbiterGeometry{64, 4}, ArbiterGeometry{64, 8}),
    [](const ::testing::TestParamInfo<ArbiterGeometry>& info) {
      return "s" + std::to_string(info.param.stages) + "_x" +
             std::to_string(info.param.xor_chains);
    });

// ---- SRAM noise sweep ----------------------------------------------------------

class SramNoise : public ::testing::TestWithParam<double> {};

TEST_P(SramNoise, IntraDistanceScalesWithNoise) {
  SramPufConfig cfg;
  cfg.noise_sigma = GetParam();
  SramPuf puf(cfg, 77);
  const Response ref = puf.evaluate_noiseless({});
  const double intra = intra_distance(puf, {}, ref, 10);
  // Analytical expectation: P(flip) = P(|skew| < |noise|) ~
  // 2*phi-ish; just require monotone-consistent bracketing.
  if (GetParam() <= 0.02) {
    EXPECT_LT(intra, 0.02);
  } else if (GetParam() >= 0.5) {
    EXPECT_GT(intra, 0.08);
  }
  EXPECT_LT(intra, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SramNoise,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5));

// ---- Enrollment-depth sweep -----------------------------------------------------

class MajorityDepth : public ::testing::TestWithParam<unsigned> {};

TEST_P(MajorityDepth, DeeperMajorityNeverWorse) {
  SramPufConfig cfg;
  cfg.noise_sigma = 0.3;
  SramPuf puf(cfg, 5);
  const Response truth = puf.evaluate_noiseless({});
  const Response enrolled = enroll_majority(puf, {}, GetParam());
  const double err = crypto::fractional_hamming_distance(enrolled, truth);
  // With 2048 cells and sigma 0.3 the single-read error is ~9%; majority
  // depth k cuts it steadily.
  EXPECT_LT(err, 0.12);
  if (GetParam() >= 15) {
    EXPECT_LT(err, 0.07);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, MajorityDepth,
                         ::testing::Values(1u, 3u, 7u, 15u, 31u));

}  // namespace
}  // namespace neuropuls::puf
