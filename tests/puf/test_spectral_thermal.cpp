// Tests for the spectral microring-array weak PUF (ref. [12]) and the
// §II-B temperature-compensated verification.
#include <gtest/gtest.h>

#include "core/key_manager.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/spectral_puf.hpp"

namespace neuropuls::puf {
namespace {

SpectralPufConfig small_spectral() {
  SpectralPufConfig cfg;
  cfg.rings = 12;
  cfg.wavelength_channels = 512;
  return cfg;
}

TEST(SpectralPuf, RejectsBadConfig) {
  SpectralPufConfig cfg = small_spectral();
  cfg.rings = 0;
  EXPECT_THROW(SpectralMicroringPuf(cfg, 1, 0), std::invalid_argument);
  SpectralPufConfig cfg2 = small_spectral();
  cfg2.wavelength_channels = 100;  // not a multiple of 8
  EXPECT_THROW(SpectralMicroringPuf(cfg2, 1, 0), std::invalid_argument);
  SpectralPufConfig cfg3 = small_spectral();
  cfg3.channel_spacing = 0.0;
  EXPECT_THROW(SpectralMicroringPuf(cfg3, 1, 0), std::invalid_argument);
}

TEST(SpectralPuf, WeakPufSemantics) {
  SpectralMicroringPuf puf(small_spectral(), 10, 0);
  EXPECT_EQ(puf.challenge_bytes(), 0u);
  EXPECT_EQ(puf.response_bytes(), 64u);
  EXPECT_THROW(puf.evaluate(Challenge{1}), std::invalid_argument);
}

TEST(SpectralPuf, SpectrumHasResonanceStructure) {
  SpectralMicroringPuf puf(small_spectral(), 10, 0);
  const auto spectrum = puf.transmission_spectrum();
  ASSERT_EQ(spectrum.size(), 512u);
  double min_t = 1e9, max_t = -1e9;
  for (double t : spectrum) {
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_LT(min_t, 0.6);  // notches from the ring array
  EXPECT_GT(max_t, 0.8);  // transparent between resonances
}

TEST(SpectralPuf, MedianThresholdBalancesBits) {
  SpectralMicroringPuf puf(small_spectral(), 10, 1);
  const Response r = puf.evaluate_noiseless({});
  const double ones =
      static_cast<double>(crypto::popcount(r)) / (8.0 * r.size());
  EXPECT_NEAR(ones, 0.5, 0.02);  // median split by construction
}

TEST(SpectralPuf, ReliabilityAndUniqueness) {
  SpectralMicroringPuf a(small_spectral(), 10, 0);
  SpectralMicroringPuf b(small_spectral(), 10, 1);
  const Response ref = a.evaluate_noiseless({});
  const double intra = intra_distance(a, {}, ref, 8);
  EXPECT_LT(intra, 0.08);
  const double inter =
      crypto::fractional_hamming_distance(ref, b.evaluate_noiseless({}));
  EXPECT_NEAR(inter, 0.5, 0.15);
}

TEST(SpectralPuf, SameDeviceReproducible) {
  SpectralMicroringPuf a(small_spectral(), 10, 4);
  SpectralMicroringPuf b(small_spectral(), 10, 4);
  EXPECT_EQ(a.evaluate_noiseless({}), b.evaluate_noiseless({}));
}

TEST(SpectralPuf, TemperatureShiftsSpectrum) {
  SpectralMicroringPuf puf(small_spectral(), 10, 0);
  const Response cold = puf.evaluate_noiseless({});
  puf.set_temperature(310.0);
  const Response hot = puf.evaluate_noiseless({});
  EXPECT_GT(crypto::fractional_hamming_distance(cold, hot), 0.05);
}

TEST(SpectralPuf, FeedsKeyManager) {
  // The spectral weak PUF has >= 635 stable bits: it can drive the
  // default fuzzy extractor directly.
  SpectralPufConfig cfg = small_spectral();
  cfg.wavelength_channels = 1024;
  SpectralMicroringPuf puf(cfg, 10, 2);
  core::KeyManager keys(puf);
  crypto::ChaChaDrbg rng(crypto::bytes_of("spectral-enroll"));
  const auto record = keys.enroll(rng);
  const auto derived = keys.derive(record);
  ASSERT_TRUE(derived.has_value());
  EXPECT_TRUE(common::ct_equal(keys.derive(record)->encryption_key,
                               derived->encryption_key));
}

// ---- Temperature-compensated verification (§II-B) -----------------------------

TEST(ThermalCompensation, SensorReadingRestoresMatch) {
  const auto cfg = small_photonic_config();
  PhotonicPuf device(cfg, 20, 0);
  const PhotonicPuf verifier_model(cfg, 20, 0);
  const Challenge c(2, 0x3D);

  // Device drifts to 312 K; the verifier's enrollment-temperature model
  // no longer matches...
  device.set_temperature(312.0);
  const Response drifted = device.evaluate_noiseless(c);
  const double uncompensated = crypto::fractional_hamming_distance(
      drifted, verifier_model.evaluate_noiseless(c));
  EXPECT_GT(uncompensated, 0.15);

  // ...but evaluating the model at the sensor-reported temperature does.
  const Response compensated_ref =
      verifier_model.evaluate_noiseless_at(c, 312.0);
  EXPECT_EQ(drifted, compensated_ref);
}

TEST(ThermalCompensation, SensorErrorDegradesGracefully) {
  const auto cfg = small_photonic_config();
  PhotonicPuf device(cfg, 20, 1);
  const PhotonicPuf verifier_model(cfg, 20, 1);
  const Challenge c(2, 0x3D);
  device.set_temperature(308.0);
  const Response drifted = device.evaluate_noiseless(c);

  // Exact reading: perfect; 0.2 K error: small mismatch; 5 K error: bad.
  const double exact = crypto::fractional_hamming_distance(
      drifted, verifier_model.evaluate_noiseless_at(c, 308.0));
  const double small_err = crypto::fractional_hamming_distance(
      drifted, verifier_model.evaluate_noiseless_at(c, 308.2));
  const double big_err = crypto::fractional_hamming_distance(
      drifted, verifier_model.evaluate_noiseless_at(c, 313.0));
  EXPECT_DOUBLE_EQ(exact, 0.0);
  EXPECT_LE(small_err, big_err);
  EXPECT_GT(big_err, 0.1);
}

TEST(ThermalCompensation, AtEnrollmentTempMatchesPlainEvaluate) {
  const auto cfg = small_photonic_config();
  const PhotonicPuf model(cfg, 20, 2);
  const Challenge c(2, 0x11);
  EXPECT_EQ(model.evaluate_noiseless_at(c, cfg.temperature),
            model.evaluate_noiseless(c));
}

}  // namespace
}  // namespace neuropuls::puf
