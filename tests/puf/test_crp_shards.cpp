// Sharded CrpDatabase (ctest label: concurrency): the lock-striped store
// must lose no CRP, duplicate no CRP, and keep health/quarantine
// bookkeeping exact under concurrent takers/inserters — and the default
// single-shard configuration must reproduce the serial class's take()
// order bit-for-bit. The concurrency tests here are the ones the
// `scripts/check.sh tsan` flavor runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "puf/crp_db.hpp"

namespace neuropuls::puf {
namespace {

Crp make_crp(std::uint32_t i) {
  Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x5A, 0xC3, 0x0F, 0x99};
  crp.response = {static_cast<std::uint8_t>(i * 7 + 1)};
  return crp;
}

TEST(CrpShards, SingleShardPreservesSerialTakeOrder) {
  CrpDatabase db;  // default: one shard, the serial-compatible mode
  EXPECT_EQ(db.shard_count(), 1u);
  for (std::uint32_t i = 0; i < 6; ++i) db.insert(make_crp(i));
  // The serial class scanned its entries vector from the back, and
  // compaction swaps the last entry into the freed slot; with six inserts
  // and no quarantine that yields strict LIFO order.
  for (std::uint32_t i = 6; i-- > 0;) {
    const auto crp = db.take();
    ASSERT_TRUE(crp.has_value());
    EXPECT_EQ(crp->challenge, make_crp(i).challenge) << "position " << i;
  }
  EXPECT_FALSE(db.take().has_value());
}

TEST(CrpShards, ShardedStoreSpreadsAndDrainsCompletely) {
  CrpDatabase db(4);
  EXPECT_EQ(db.shard_count(), 4u);
  constexpr std::uint32_t kCount = 64;
  std::set<Challenge> inserted;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    Crp crp = make_crp(i);
    inserted.insert(crp.challenge);
    db.insert(std::move(crp));
  }
  EXPECT_EQ(db.size(), kCount);
  std::size_t across_shards = 0;
  std::size_t populated = 0;
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    across_shards += db.shard_size(s);
    if (db.shard_size(s) > 0) ++populated;
  }
  EXPECT_EQ(across_shards, kCount);
  EXPECT_GT(populated, 1u);  // SipHash spreads 64 keys past one stripe

  std::set<Challenge> taken;
  while (const auto crp = db.take()) {
    EXPECT_TRUE(taken.insert(crp->challenge).second) << "duplicate take";
  }
  EXPECT_EQ(taken, inserted);
  EXPECT_TRUE(db.empty());
}

TEST(CrpShards, LookupAndHealthAreShardLocal) {
  CrpDatabase db(8);
  db.set_quarantine_threshold(2);
  for (std::uint32_t i = 0; i < 32; ++i) db.insert(make_crp(i));
  const Crp probe = make_crp(17);
  ASSERT_TRUE(db.lookup(probe.challenge).has_value());
  EXPECT_EQ(*db.lookup(probe.challenge), probe.response);

  db.record_failure(probe.challenge);
  db.record_failure(probe.challenge);
  EXPECT_FALSE(db.lookup(probe.challenge).has_value());  // quarantined
  EXPECT_EQ(db.quarantined(), 1u);
  EXPECT_EQ(db.evict_quarantined(), 1u);
  EXPECT_EQ(db.size(), 31u);
  EXPECT_FALSE(db.health(probe.challenge).has_value());
}

// Concurrent takers against a shared store: every CRP is taken exactly
// once (one-time-use is a security property, not just bookkeeping).
TEST(CrpShardsConcurrency, ParallelTakeLosesAndDuplicatesNothing) {
  constexpr std::uint32_t kCount = 512;
  constexpr unsigned kThreads = 4;
  CrpDatabase db(8);
  std::set<Challenge> inserted;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    Crp crp = make_crp(i);
    inserted.insert(crp.challenge);
    db.insert(std::move(crp));
  }

  std::vector<std::vector<Challenge>> taken(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &taken, t] {
      while (const auto crp = db.take()) {
        taken[t].push_back(crp->challenge);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<Challenge> all;
  std::size_t total = 0;
  for (const auto& per_thread : taken) {
    total += per_thread.size();
    for (const auto& challenge : per_thread) {
      EXPECT_TRUE(all.insert(challenge).second) << "duplicate take";
    }
  }
  EXPECT_EQ(total, kCount);
  EXPECT_EQ(all, inserted);
  EXPECT_TRUE(db.empty());
  const auto stats = db.lock_stats();
  EXPECT_GT(stats.acquisitions, 0u);
  EXPECT_LE(stats.contended, stats.acquisitions);
}

// Mixed traffic: two inserter threads race two takers plus a
// health-recording thread. Accounting must balance exactly.
TEST(CrpShardsConcurrency, MixedInsertTakeRecordStaysConsistent) {
  constexpr std::uint32_t kPreload = 128;
  constexpr std::uint32_t kPerInserter = 128;
  CrpDatabase db(8);
  for (std::uint32_t i = 0; i < kPreload; ++i) db.insert(make_crp(i));

  std::vector<std::vector<Challenge>> taken(2);
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&db, t] {
      for (std::uint32_t i = 0; i < kPerInserter; ++i) {
        db.insert(make_crp(kPreload + t * kPerInserter + i));
      }
    });
  }
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&db, &taken, t] {
      // Bounded pulls, not drain-until-empty: inserters are still running.
      for (std::uint32_t i = 0; i < kPreload; ++i) {
        if (const auto crp = db.take()) taken[t].push_back(crp->challenge);
      }
    });
  }
  threads.emplace_back([&db] {
    const Challenge target = make_crp(3).challenge;
    for (int i = 0; i < 64; ++i) {
      db.record_failure(target);
      db.record_success(target);
    }
  });
  for (auto& thread : threads) thread.join();

  std::set<Challenge> all;
  for (const auto& per_thread : taken) {
    for (const auto& challenge : per_thread) {
      EXPECT_TRUE(all.insert(challenge).second) << "duplicate take";
    }
  }
  EXPECT_EQ(db.size() + all.size(), kPreload + 2 * kPerInserter);
  std::size_t across_shards = 0;
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    across_shards += db.shard_size(s);
  }
  EXPECT_EQ(across_shards, db.size());
}

// Round-robin fairness of take(): the cursor must spread successive
// takers across stripes instead of draining shard 0 first. With every
// shard populated, the first kShards takes must land on kShards distinct
// shards without a single cross-shard steal.
TEST(CrpShards, TakeCursorVisitsAllShardsRoundRobin) {
  constexpr std::size_t kShards = 4;
  CrpDatabase db(kShards);
  for (std::uint32_t i = 0; i < 64; ++i) db.insert(make_crp(i));
  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_GT(db.shard_size(s), 0u) << "fixture must populate every shard";
  }
  for (std::size_t s = 0; s < kShards; ++s) ASSERT_TRUE(db.take().has_value());
  const auto first_round = db.lock_stats();
  ASSERT_EQ(first_round.shard_takes.size(), kShards);
  EXPECT_EQ(first_round.takes, kShards);
  EXPECT_EQ(first_round.take_steals, 0u)
      << "with all shards populated, no take should probe past its start";
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(first_round.shard_takes[s], 1u) << "shard " << s;
  }
  // Drain the rest: per-shard takes must account for exactly the CRPs
  // each shard held, and once shards start emptying the cursor probes
  // onward — those probes are the only source of take_steals.
  while (db.take().has_value()) {
  }
  const auto drained = db.lock_stats();
  EXPECT_EQ(drained.takes, 64u);
  EXPECT_LE(drained.take_steals, drained.takes);
}

// Starvation regression under concurrent takers: when a striped store is
// drained by racing threads, every populated shard must serve takes — no
// shard may sit untouched while others empty — and the per-shard counts
// must balance exactly against what each shard held.
TEST(CrpShardsConcurrency, ConcurrentTakersStarveNoShard) {
  constexpr std::uint32_t kCount = 512;
  constexpr unsigned kThreads = 4;
  CrpDatabase db(8);
  for (std::uint32_t i = 0; i < kCount; ++i) db.insert(make_crp(i));
  std::vector<std::size_t> initial(db.shard_count());
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    initial[s] = db.shard_size(s);
  }

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db] {
      while (db.take().has_value()) {
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(db.empty());

  const auto stats = db.lock_stats();
  ASSERT_EQ(stats.shard_takes.size(), db.shard_count());
  EXPECT_EQ(stats.takes, kCount);
  std::uint64_t across = 0;
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    // Exactness, not just non-starvation: a shard serves precisely the
    // CRPs it held, so lost/double takes cannot hide in the aggregate.
    EXPECT_EQ(stats.shard_takes[s], initial[s]) << "shard " << s;
    if (initial[s] > 0) {
      EXPECT_GT(stats.shard_takes[s], 0u) << "starved shard " << s;
    }
    across += stats.shard_takes[s];
  }
  EXPECT_EQ(across, stats.takes);
  EXPECT_LE(stats.take_steals, stats.takes);
}

// Concurrent failure recording on one challenge: the counters are guarded
// by the shard lock, so exactly the recorded total must land.
TEST(CrpShardsConcurrency, ConcurrentFailuresQuarantineExactly) {
  CrpDatabase db(4);
  db.set_quarantine_threshold(1000000);  // count, don't quarantine
  db.insert(make_crp(7));
  const Challenge target = make_crp(7).challenge;
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 250;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &target] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) db.record_failure(target);
    });
  }
  for (auto& thread : threads) thread.join();
  const auto health = db.health(target);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->failures, kThreads * kPerThread);
  EXPECT_EQ(health->consecutive_failures, kThreads * kPerThread);
  EXPECT_FALSE(health->quarantined);
}

}  // namespace
}  // namespace neuropuls::puf
