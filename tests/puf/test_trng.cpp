// Photonic TRNG tests: fairness of the noise-differential readout,
// debiasing, conditioning, and NIST behaviour of each stage.
#include <gtest/gtest.h>

#include "metrics/nist.hpp"
#include "puf/trng.hpp"

namespace neuropuls::puf {
namespace {

PhotonicTrng make_trng(PhotonicPuf& puf) {
  return PhotonicTrng(puf, Challenge(puf.challenge_bytes(), 0x5A));
}

TEST(PhotonicTrng, RejectsWrongChallengeSize) {
  PhotonicPuf puf(small_photonic_config(), 3, 0);
  EXPECT_THROW(PhotonicTrng(puf, Challenge(1, 0)), std::invalid_argument);
}

TEST(PhotonicTrng, RawBitsNearlyFair) {
  PhotonicPuf puf(small_photonic_config(), 3, 0);
  PhotonicTrng trng = make_trng(puf);
  const double bias = trng.measured_bias(8192);
  EXPECT_NEAR(bias, 0.5, 0.03);
}

TEST(PhotonicTrng, OutputSizesExact) {
  PhotonicPuf puf(small_photonic_config(), 3, 1);
  PhotonicTrng trng = make_trng(puf);
  EXPECT_EQ(trng.raw_bits(100).size(), 13u);  // ceil(100/8)
  EXPECT_EQ(trng.debiased_bits(64).size(), 8u);
  EXPECT_EQ(trng.conditioned_bytes(100).size(), 100u);
}

TEST(PhotonicTrng, SuccessiveOutputsDiffer) {
  PhotonicPuf puf(small_photonic_config(), 3, 2);
  PhotonicTrng trng = make_trng(puf);
  EXPECT_NE(trng.raw_bits(256), trng.raw_bits(256));
  EXPECT_NE(trng.conditioned_bytes(32), trng.conditioned_bytes(32));
}

TEST(PhotonicTrng, DebiasedPassesFrequencyAndRuns) {
  PhotonicPuf puf(small_photonic_config(), 3, 3);
  PhotonicTrng trng = make_trng(puf);
  const auto bits = metrics::bits_from_bytes(trng.debiased_bits(4096));
  EXPECT_TRUE(metrics::nist_frequency(bits).passed);
  EXPECT_TRUE(metrics::nist_runs(bits).passed);
}

TEST(PhotonicTrng, ConditionedPassesFullSuite) {
  PhotonicPuf puf(small_photonic_config(), 3, 4);
  PhotonicTrng trng = make_trng(puf);
  const auto bits = metrics::bits_from_bytes(trng.conditioned_bytes(1024));
  EXPECT_DOUBLE_EQ(metrics::nist_pass_fraction(bits), 1.0);
}

TEST(PhotonicTrng, ThroughputClaimsSane) {
  PhotonicPuf puf(small_photonic_config(), 3, 5);
  PhotonicTrng trng = make_trng(puf);
  EXPECT_EQ(trng.bits_per_interrogation(), puf.response_bits());
  EXPECT_GT(trng.raw_throughput_bps(), 1e8);  // >100 Mb/s raw
}

}  // namespace
}  // namespace neuropuls::puf
