// Tests for the photonic PUF and its compositions — the §II-A statistical
// claims (intra/inter Hamming distance), the §III-B speed claim, and the
// §IV chip-binding / challenge-encryption constructions.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/chacha20.hpp"

#include "puf/composite.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::puf {
namespace {

TEST(PhotonicPuf, RejectsBadConfig) {
  PhotonicPufConfig cfg = small_photonic_config();
  cfg.challenge_bits = 12;  // not a multiple of 8
  EXPECT_THROW(PhotonicPuf(cfg, 1, 0), std::invalid_argument);
  PhotonicPufConfig cfg2 = small_photonic_config();
  cfg2.samples_per_bit = 0;
  EXPECT_THROW(PhotonicPuf(cfg2, 1, 0), std::invalid_argument);
}

TEST(PhotonicPuf, WrongChallengeSizeThrows) {
  PhotonicPuf puf(small_photonic_config(), 1, 0);
  EXPECT_THROW(puf.evaluate(Challenge(1, 0)), std::invalid_argument);
}

TEST(PhotonicPuf, SizesConsistent) {
  PhotonicPuf puf(small_photonic_config(), 1, 0);
  EXPECT_EQ(puf.challenge_bytes(), 2u);   // 16 bits
  EXPECT_EQ(puf.response_bits(), 32u);    // 16 windows x 2 pairs
  EXPECT_EQ(puf.response_bytes(), 4u);
  const Response r = puf.evaluate(Challenge(2, 0xC3));
  EXPECT_EQ(r.size(), 4u);
}

TEST(PhotonicPuf, NoiselessIsDeterministic) {
  PhotonicPuf puf(small_photonic_config(), 3, 1);
  const Challenge c(2, 0x5A);
  EXPECT_EQ(puf.evaluate_noiseless(c), puf.evaluate_noiseless(c));
}

TEST(PhotonicPuf, ReliabilityIntraDistanceSmall) {
  PhotonicPuf puf(small_photonic_config(), 3, 1);
  const Challenge c(2, 0x5A);
  const Response ref = puf.evaluate_noiseless(c);
  const double intra = intra_distance(puf, c, ref, 10);
  EXPECT_LT(intra, 0.12);
}

TEST(PhotonicPuf, InterDeviceNearHalf) {
  // §II-A: "fractional Hamming distance close to 50% ... inter-device".
  const PhotonicPufConfig cfg = small_photonic_config();
  crypto::ChaChaDrbg rng(crypto::bytes_of("inter-phot"));
  double total = 0.0;
  int pairs = 0;
  constexpr int kDevices = 6;
  std::vector<std::unique_ptr<PhotonicPuf>> devices;
  for (int d = 0; d < kDevices; ++d) {
    devices.push_back(std::make_unique<PhotonicPuf>(cfg, 99, d));
  }
  for (int trial = 0; trial < 4; ++trial) {
    const Challenge c = rng.generate(2);
    for (int a = 0; a < kDevices; ++a) {
      for (int b = a + 1; b < kDevices; ++b) {
        total += crypto::fractional_hamming_distance(
            devices[a]->evaluate_noiseless(c),
            devices[b]->evaluate_noiseless(c));
        ++pairs;
      }
    }
  }
  EXPECT_NEAR(total / pairs, 0.5, 0.12);
}

TEST(PhotonicPuf, ChallengeSensitivity) {
  // Flipping one challenge bit must change a macroscopic fraction of
  // response bits (strong-PUF avalanche, helped by the ring memory).
  PhotonicPuf puf(small_photonic_config(), 5, 2);
  Challenge c(2, 0x0F);
  const Response r1 = puf.evaluate_noiseless(c);
  c[0] ^= 0x80;  // flip the first bit (early in time, affects later bits)
  const Response r2 = puf.evaluate_noiseless(c);
  EXPECT_GT(crypto::fractional_hamming_distance(r1, r2), 0.02);
}

TEST(PhotonicPuf, AnalogAndDigitalAgree) {
  PhotonicPuf puf(small_photonic_config(), 5, 2);
  const Challenge c(2, 0x3C);
  const auto analog = puf.evaluate_analog(c, /*noisy=*/false);
  const Response digital = puf.evaluate_noiseless(c);
  std::size_t bit = 0;
  for (const auto& row : analog) {
    for (double delta : row) {
      const bool d = (digital[bit / 8] >> (7 - bit % 8)) & 1;
      EXPECT_EQ(d, delta > 0.0) << "bit " << bit;
      ++bit;
    }
  }
}

TEST(PhotonicPuf, TemperatureChangesResponses) {
  PhotonicPuf puf(small_photonic_config(), 7, 0);
  const Challenge c(2, 0xAA);
  const Response cold = puf.evaluate_noiseless(c);
  puf.set_temperature(320.0);
  const Response hot = puf.evaluate_noiseless(c);
  EXPECT_GT(crypto::fractional_hamming_distance(cold, hot), 0.0);
}

TEST(PhotonicPuf, LaserPowerScalingFlipsOnlyMinorityOfBits) {
  // Differential readout self-references the optical power, so a modest
  // global power change flips only the bits whose calibrated margin is
  // small — a minority, far from the fresh-device distance of ~50%.
  PhotonicPuf puf(small_photonic_config(), 7, 0);
  const Challenge c(2, 0xAA);
  const Response nominal = puf.evaluate_noiseless(c);
  puf.set_laser_power_scale(1.3);
  const Response boosted = puf.evaluate_noiseless(c);
  EXPECT_LT(crypto::fractional_hamming_distance(nominal, boosted), 0.30);
}

TEST(PhotonicPuf, ThroughputMeetsAttestationClaim) {
  // §III-B: "the inherent speed of the pPUF (at least 5 Gb/s)". With the
  // full-size configuration the response throughput must clear that bar.
  PhotonicPufConfig cfg;  // defaults: 8 ports, 64-bit challenges, 25 GS/s
  PhotonicPuf puf(cfg, 11, 0);
  EXPECT_GE(puf.response_throughput_bps(), 5e9);
  EXPECT_LT(puf.interrogation_time_s(), 100e-9);  // §IV lifetime bound
}

TEST(PhotonicPuf, ResponseLifetimeBelow100ns) {
  PhotonicPuf puf(small_photonic_config(), 11, 0);
  EXPECT_LT(puf.interrogation_time_s(), 100e-9);
}

// ---- Challenge encryption ----------------------------------------------------

TEST(EncryptedChallengePuf, TransformIsDeterministicAndKeyed) {
  auto inner = std::make_unique<PhotonicPuf>(small_photonic_config(), 13, 0);
  const Response weak_key = crypto::bytes_of("weak puf key material");
  EncryptedChallengePuf wrapped(std::move(inner), weak_key);
  const Challenge c(2, 0x42);
  EXPECT_EQ(wrapped.transform(c), wrapped.transform(c));
  EXPECT_NE(wrapped.transform(c), c);

  auto inner2 = std::make_unique<PhotonicPuf>(small_photonic_config(), 13, 0);
  EncryptedChallengePuf other(std::move(inner2),
                              crypto::bytes_of("different key"));
  EXPECT_NE(wrapped.transform(c), other.transform(c));
}

TEST(EncryptedChallengePuf, ConsistentWithInnerOnTransformedChallenge) {
  PhotonicPuf reference(small_photonic_config(), 13, 0);
  auto inner = std::make_unique<PhotonicPuf>(small_photonic_config(), 13, 0);
  const Response weak_key = crypto::bytes_of("key");
  EncryptedChallengePuf wrapped(std::move(inner), weak_key);
  const Challenge c(2, 0x42);
  EXPECT_EQ(wrapped.evaluate_noiseless(c),
            reference.evaluate_noiseless(wrapped.transform(c)));
}

TEST(EncryptedChallengePuf, NullInnerThrows) {
  EXPECT_THROW(EncryptedChallengePuf(nullptr, crypto::bytes_of("k")),
               std::invalid_argument);
}

// ---- Composite PIC+ASIC -------------------------------------------------------

CompositePuf make_composite(std::uint64_t pic_index,
                            std::uint64_t asic_seed) {
  return CompositePuf(
      std::make_unique<PhotonicPuf>(small_photonic_config(), 31, pic_index),
      std::make_unique<SramPuf>(SramPufConfig{}, asic_seed));
}

TEST(CompositePuf, GenuinePairingIsStable) {
  CompositePuf genuine = make_composite(0, 100);
  const Challenge c(2, 0x99);
  const Response ref = genuine.evaluate_noiseless(c);
  // Noisy evaluations stay close to the reference.
  EXPECT_LT(crypto::fractional_hamming_distance(genuine.evaluate(c), ref),
            0.15);
}

TEST(CompositePuf, SwappedPicDetected) {
  CompositePuf genuine = make_composite(0, 100);
  CompositePuf tampered = make_composite(1, 100);  // attacker swapped PIC
  crypto::ChaChaDrbg rng(crypto::bytes_of("swap-pic"));
  double d = 0.0;
  constexpr int kChallenges = 8;
  for (int i = 0; i < kChallenges; ++i) {
    const Challenge c = rng.generate(2);
    d += crypto::fractional_hamming_distance(
        genuine.evaluate_noiseless(c), tampered.evaluate_noiseless(c));
  }
  EXPECT_GT(d / kChallenges, 0.2);
}

TEST(CompositePuf, SwappedAsicDetected) {
  CompositePuf genuine = make_composite(0, 100);
  CompositePuf tampered = make_composite(0, 101);  // attacker swapped ASIC
  const Challenge c(2, 0x99);
  const double d = crypto::fractional_hamming_distance(
      genuine.evaluate_noiseless(c), tampered.evaluate_noiseless(c));
  EXPECT_NEAR(d, 0.5, 0.2);  // keystream mask decorrelates completely
}

TEST(CompositePuf, NullChipThrows) {
  EXPECT_THROW(
      CompositePuf(nullptr, std::make_unique<SramPuf>(SramPufConfig{}, 1)),
      std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::puf
