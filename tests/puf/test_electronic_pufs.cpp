// Tests for the electronic PUF baselines: SRAM, RO, arbiter/XOR-arbiter.
#include <gtest/gtest.h>

#include "puf/arbiter_puf.hpp"
#include "puf/crp_db.hpp"
#include "puf/ro_puf.hpp"
#include "puf/sram_puf.hpp"

namespace neuropuls::puf {
namespace {

// ---- SRAM ------------------------------------------------------------------

TEST(SramPuf, RejectsBadConfig) {
  SramPufConfig cfg;
  cfg.cells = 0;
  EXPECT_THROW(SramPuf(cfg, 1), std::invalid_argument);
  cfg.cells = 12;  // not a multiple of 8
  EXPECT_THROW(SramPuf(cfg, 1), std::invalid_argument);
}

TEST(SramPuf, RejectsNonEmptyChallenge) {
  SramPuf puf(SramPufConfig{}, 1);
  EXPECT_THROW(puf.evaluate(Challenge{0x01}), std::invalid_argument);
}

TEST(SramPuf, HighReliabilityAtReferenceTemperature) {
  SramPuf puf(SramPufConfig{}, 42);
  const Response ref = puf.evaluate_noiseless({});
  const double intra = intra_distance(puf, {}, ref, 10);
  EXPECT_LT(intra, 0.06);  // a few percent flips
  EXPECT_GT(intra, 0.0);   // but not noiseless
}

TEST(SramPuf, InterDeviceNearHalf) {
  SramPuf a(SramPufConfig{}, 1), b(SramPufConfig{}, 2);
  const double inter = crypto::fractional_hamming_distance(
      a.evaluate_noiseless({}), b.evaluate_noiseless({}));
  EXPECT_NEAR(inter, 0.5, 0.05);
}

TEST(SramPuf, UniformityNearHalf) {
  SramPuf puf(SramPufConfig{}, 7);
  const Response r = puf.evaluate_noiseless({});
  const double ones =
      static_cast<double>(crypto::popcount(r)) / (8.0 * r.size());
  EXPECT_NEAR(ones, 0.5, 0.05);
}

TEST(SramPuf, HotterMeansNoisier) {
  SramPuf puf(SramPufConfig{}, 42);
  const Response ref = puf.evaluate_noiseless({});
  const double intra_cold = intra_distance(puf, {}, ref, 20);
  puf.set_temperature(420.0);
  const double intra_hot = intra_distance(puf, {}, ref, 20);
  EXPECT_GT(intra_hot, intra_cold);
}

TEST(SramPuf, MajorityEnrollmentBeatsSingleRead) {
  SramPufConfig cfg;
  cfg.noise_sigma = 0.25;  // deliberately noisy
  SramPuf puf(cfg, 9);
  const Response truth = puf.evaluate_noiseless({});
  const Response enrolled = enroll_majority(puf, {}, 15);
  const Response single = puf.evaluate({});
  EXPECT_LE(crypto::fractional_hamming_distance(enrolled, truth),
            crypto::fractional_hamming_distance(single, truth));
}

TEST(SramPuf, EnrollRejectsEvenReadings) {
  SramPuf puf(SramPufConfig{}, 1);
  EXPECT_THROW(enroll_majority(puf, {}, 4), std::invalid_argument);
}

// ---- RO --------------------------------------------------------------------

TEST(RoPuf, ChallengeCodec) {
  const Challenge c = encode_ro_challenge(300, 7);
  const RoPair p = decode_ro_challenge(c);
  EXPECT_EQ(p.i, 300u);
  EXPECT_EQ(p.j, 7u);
  EXPECT_THROW(decode_ro_challenge(Challenge{1, 2, 3}), std::invalid_argument);
}

TEST(RoPuf, RejectsBadConfig) {
  RoPufConfig cfg;
  cfg.oscillators = 1;
  EXPECT_THROW(RoPuf(cfg, 1), std::invalid_argument);
}

TEST(RoPuf, OutOfRangeOscillatorThrows) {
  RoPuf puf(RoPufConfig{}, 1);
  EXPECT_THROW(puf.measure_count(9999), std::invalid_argument);
}

TEST(RoPuf, ResponseMatchesCountOrdering) {
  RoPuf puf(RoPufConfig{}, 5);
  const auto c = encode_ro_challenge(0, 1);
  const Response r = puf.evaluate_noiseless(c);
  const bool expected =
      puf.expected_count(0) > puf.expected_count(1);
  EXPECT_EQ((r[0] >> 7) & 1, expected ? 1 : 0);
}

TEST(RoPuf, OppositePairGivesOppositeBit) {
  RoPuf puf(RoPufConfig{}, 5);
  const auto r_ij = puf.evaluate_noiseless(encode_ro_challenge(2, 3));
  const auto r_ji = puf.evaluate_noiseless(encode_ro_challenge(3, 2));
  EXPECT_NE(r_ij[0] >> 7, r_ji[0] >> 7);
}

TEST(RoPuf, ClosePairsAreUnreliable) {
  // Find the pair with the smallest and the largest expected |delta|;
  // the former must flip more often under repeated noisy measurement.
  RoPuf puf(RoPufConfig{}, 21);
  std::size_t close_i = 0, close_j = 1, far_i = 0, far_j = 1;
  std::int64_t best_close = INT64_MAX, best_far = -1;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      const std::int64_t d =
          std::abs(puf.expected_count(i) - puf.expected_count(j));
      if (d < best_close) { best_close = d; close_i = i; close_j = j; }
      if (d > best_far) { best_far = d; far_i = i; far_j = j; }
    }
  }
  auto flip_rate = [&](std::size_t i, std::size_t j) {
    const auto c = encode_ro_challenge(i, j);
    const auto ref = puf.evaluate_noiseless(c);
    int flips = 0;
    for (int k = 0; k < 60; ++k) flips += (puf.evaluate(c) != ref);
    return flips / 60.0;
  };
  EXPECT_GE(flip_rate(close_i, close_j), flip_rate(far_i, far_j));
  EXPECT_LT(flip_rate(far_i, far_j), 0.05);
}

TEST(RoPuf, LayoutBiasCreatesAliasing) {
  // A pair whose *layout* offsets differ hugely produces the same bit on
  // nearly every device.
  RoPufConfig cfg;
  cfg.layout_sigma_hz = 1.0e6;   // exaggerate layout systematics
  cfg.process_sigma_hz = 1.0e5;
  // Find the most layout-skewed pair using one device's expected counts
  // (layout dominates by construction).
  RoPuf probe(cfg, 0);
  std::size_t bi = 0, bj = 1;
  std::int64_t best = -1;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      const std::int64_t d =
          std::abs(probe.expected_count(i) - probe.expected_count(j));
      if (d > best) { best = d; bi = i; bj = j; }
    }
  }
  const auto c = encode_ro_challenge(bi, bj);
  int ones = 0;
  constexpr int kDevices = 40;
  for (int dev = 0; dev < kDevices; ++dev) {
    RoPuf puf(cfg, 1000 + static_cast<std::uint64_t>(dev));
    ones += (puf.evaluate_noiseless(c)[0] >> 7) & 1;
  }
  // Aliased: all (or almost all) devices agree.
  EXPECT_TRUE(ones <= 2 || ones >= kDevices - 2) << "ones=" << ones;
}

TEST(RoPuf, TemperatureShiftsCounts) {
  RoPuf puf(RoPufConfig{}, 3);
  const auto cold = puf.expected_count(0);
  puf.set_temperature(340.0);
  const auto hot = puf.expected_count(0);
  EXPECT_LT(hot, cold);  // negative thermal slope
}

// ---- Arbiter ---------------------------------------------------------------

TEST(ArbiterPuf, RejectsBadConfig) {
  ArbiterPufConfig cfg;
  cfg.stages = 0;
  EXPECT_THROW(ArbiterPuf(cfg, 1), std::invalid_argument);
  ArbiterPufConfig cfg2;
  cfg2.xor_chains = 0;
  EXPECT_THROW(ArbiterPuf(cfg2, 1), std::invalid_argument);
}

TEST(ArbiterPuf, WrongChallengeSizeThrows) {
  ArbiterPuf puf(ArbiterPufConfig{}, 1);
  EXPECT_THROW(puf.evaluate(Challenge(3, 0)), std::invalid_argument);
}

TEST(ArbiterPuf, DeterministicNoiselessResponse) {
  ArbiterPuf puf(ArbiterPufConfig{}, 11);
  const Challenge c(8, 0xA5);
  EXPECT_EQ(puf.evaluate_noiseless(c), puf.evaluate_noiseless(c));
}

TEST(ArbiterPuf, ResponseBalancedOverChallenges) {
  ArbiterPuf puf(ArbiterPufConfig{}, 13);
  crypto::ChaChaDrbg rng(crypto::bytes_of("balance"));
  int ones = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    ones += (puf.evaluate_noiseless(rng.generate(8))[0] >> 7) & 1;
  }
  EXPECT_NEAR(ones / static_cast<double>(kN), 0.5, 0.06);
}

TEST(ArbiterPuf, DevicesDisagreeOnHalfTheChallenges) {
  ArbiterPuf a(ArbiterPufConfig{}, 1), b(ArbiterPufConfig{}, 2);
  crypto::ChaChaDrbg rng(crypto::bytes_of("inter"));
  int diff = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    const Challenge c = rng.generate(8);
    diff += (a.evaluate_noiseless(c) != b.evaluate_noiseless(c));
  }
  EXPECT_NEAR(diff / static_cast<double>(kN), 0.5, 0.07);
}

TEST(ArbiterPuf, NoiseFlipsOnlyMarginalChallenges) {
  ArbiterPufConfig cfg;
  cfg.noise_sigma = 0.15;  // |delta| ~ N(0, sqrt(stages)); make flips visible
  ArbiterPuf puf(cfg, 3);
  crypto::ChaChaDrbg rng(crypto::bytes_of("noise"));
  int flips = 0;
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    const Challenge c = rng.generate(8);
    const Response ref = puf.evaluate_noiseless(c);
    for (int k = 0; k < 3; ++k) flips += (puf.evaluate(c) != ref);
  }
  const double rate = flips / (3.0 * kN);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 0.05);
}

TEST(ArbiterPuf, XorVariantIsNoisier) {
  // XORing chains multiplies the single-chain error rate — the classic
  // reliability cost of the hardening.
  ArbiterPufConfig plain;
  plain.noise_sigma = 0.05;
  ArbiterPufConfig xored = plain;
  xored.xor_chains = 6;
  ArbiterPuf a(plain, 5), b(xored, 5);
  crypto::ChaChaDrbg rng(crypto::bytes_of("xor-noise"));
  int flips_a = 0, flips_b = 0;
  constexpr int kN = 800;
  for (int i = 0; i < kN; ++i) {
    const Challenge c = rng.generate(8);
    flips_a += (a.evaluate(c) != a.evaluate_noiseless(c));
    flips_b += (b.evaluate(c) != b.evaluate_noiseless(c));
  }
  EXPECT_GT(flips_b, flips_a);
}

// ---- CRP database -----------------------------------------------------------

TEST(CrpDatabase, EnrollTakeExhaust) {
  ArbiterPuf puf(ArbiterPufConfig{}, 77);
  CrpDatabase db;
  crypto::ChaChaDrbg rng(crypto::bytes_of("db"));
  db.enroll(puf, 10, rng);
  EXPECT_EQ(db.size(), 10u);
  EXPECT_GT(db.storage_bytes(), 0u);
  for (int i = 0; i < 10; ++i) {
    const auto crp = db.take();
    ASSERT_TRUE(crp.has_value());
    // The enrolled response matches the device's stable behaviour.
    EXPECT_EQ(crp->response, puf.evaluate_noiseless(crp->challenge));
  }
  EXPECT_FALSE(db.take().has_value());
  EXPECT_TRUE(db.empty());
}

TEST(CrpDatabase, LookupFindsOnlyEnrolled) {
  ArbiterPuf puf(ArbiterPufConfig{}, 78);
  CrpDatabase db;
  crypto::ChaChaDrbg rng(crypto::bytes_of("db2"));
  db.enroll(puf, 5, rng);
  Crp known{rng.generate(8), Response{1}};
  db.insert(known);
  EXPECT_TRUE(db.lookup(known.challenge).has_value());
  EXPECT_FALSE(db.lookup(rng.generate(8)).has_value());
}

}  // namespace
}  // namespace neuropuls::puf
