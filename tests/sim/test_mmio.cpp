// Register-level MMIO tests: bus mapping/dispatch rules and the PUF
// device's register map semantics (busy period, error states, windows).
#include <gtest/gtest.h>

#include "puf/photonic_puf.hpp"
#include "sim/mmio.hpp"

namespace neuropuls::sim {
namespace {

struct Fixture {
  EventScheduler scheduler;
  StatsRegistry stats;
  CpuModel cpu{scheduler, stats};
  puf::PhotonicPuf device_puf{puf::small_photonic_config(), 8, 0};
  PufMmioDevice device{scheduler, device_puf, 100.0};
  MmioBus bus{cpu};

  Fixture() { bus.map(0x4000'0000, &device); }
};

TEST(MmioBus, MappingRules) {
  Fixture f;
  PufMmioDevice second(f.scheduler, f.device_puf, 100.0);
  EXPECT_THROW(f.bus.map(0x4000'0000, &second), std::invalid_argument);
  EXPECT_THROW(f.bus.map(0x4000'0100, &second), std::invalid_argument);
  EXPECT_NO_THROW(f.bus.map(0x5000'0000, &second));
  EXPECT_THROW(f.bus.map(0x6000'0002, &second), std::invalid_argument);
  EXPECT_THROW(f.bus.map(0x7000'0000, nullptr), std::invalid_argument);
}

TEST(MmioBus, DispatchRules) {
  Fixture f;
  EXPECT_THROW(f.bus.read32(0x3000'0000), std::out_of_range);
  EXPECT_THROW(f.bus.read32(0x4000'0000 + 0x300), std::out_of_range);
  EXPECT_THROW(f.bus.read32(0x4000'0001), std::invalid_argument);
  EXPECT_NO_THROW(f.bus.read32(0x4000'0000 + PufMmioDevice::kStatus));
}

TEST(MmioBus, AccessesChargeCpuTime) {
  Fixture f;
  const double t0 = f.scheduler.now_ns();
  (void)f.bus.read32(0x4000'0000 + PufMmioDevice::kStatus);
  EXPECT_GT(f.scheduler.now_ns(), t0);
}

TEST(PufMmio, LengthRegisters) {
  Fixture f;
  EXPECT_EQ(f.bus.read32(0x4000'0000 + PufMmioDevice::kChalLen),
            f.device_puf.challenge_bytes());
  EXPECT_EQ(f.bus.read32(0x4000'0000 + PufMmioDevice::kRespLen),
            f.device_puf.response_bytes());
}

TEST(PufMmio, StartWithoutChallengeRaisesError) {
  Fixture f;
  f.bus.write32(0x4000'0000 + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlReset);
  f.bus.write32(0x4000'0000 + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlStart);
  EXPECT_TRUE(f.bus.read32(0x4000'0000 + PufMmioDevice::kStatus) &
              PufMmioDevice::kStatusError);
}

TEST(PufMmio, BusyThenDone) {
  Fixture f;
  const std::uint32_t base = 0x4000'0000;
  f.bus.write32(base + PufMmioDevice::kChalWindow, 0xAABBCCDD);  // 2-byte chal
  f.bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlStart);
  EXPECT_TRUE(f.bus.read32(base + PufMmioDevice::kStatus) &
              PufMmioDevice::kStatusBusy);
  // Response window reads zero while busy.
  EXPECT_EQ(f.bus.read32(base + PufMmioDevice::kRespWindow), 0u);
  // Let the device latency elapse.
  f.scheduler.advance(ps_from_ns(200.0));
  EXPECT_TRUE(f.bus.read32(base + PufMmioDevice::kStatus) &
              PufMmioDevice::kStatusDone);
  EXPECT_NE(f.bus.read32(base + PufMmioDevice::kRespWindow), 0u);
}

TEST(PufMmio, DriverRoundTripMatchesPuf) {
  Fixture f;
  const puf::Challenge c(f.device_puf.challenge_bytes(), 0x3C);
  const auto via_mmio =
      mmio_puf_evaluate(f.bus, 0x4000'0000, c, f.cpu, f.scheduler);
  ASSERT_TRUE(via_mmio.has_value());
  EXPECT_EQ(via_mmio->size(), f.device_puf.response_bytes());
  // The MMIO path drives the same physical device: its noiseless
  // response should be close (noise aside) to the direct evaluation.
  const auto direct = f.device_puf.evaluate_noiseless(c);
  EXPECT_LT(crypto::fractional_hamming_distance(*via_mmio, direct), 0.2);
}

TEST(PufMmio, ResetClearsState) {
  Fixture f;
  const std::uint32_t base = 0x4000'0000;
  f.bus.write32(base + PufMmioDevice::kChalWindow, 0x11223344);
  f.bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlStart);
  f.scheduler.advance(ps_from_ns(200.0));
  ASSERT_TRUE(f.bus.read32(base + PufMmioDevice::kStatus) &
              PufMmioDevice::kStatusDone);
  f.bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlReset);
  EXPECT_EQ(f.bus.read32(base + PufMmioDevice::kStatus), 0u);
  // Start again without rewriting the challenge -> error.
  f.bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlStart);
  EXPECT_TRUE(f.bus.read32(base + PufMmioDevice::kStatus) &
              PufMmioDevice::kStatusError);
}

TEST(PufMmio, ReservedWritesIgnored) {
  Fixture f;
  const std::uint32_t base = 0x4000'0000;
  EXPECT_NO_THROW(f.bus.write32(base + PufMmioDevice::kStatus, 0xFFFFFFFF));
  EXPECT_NO_THROW(f.bus.write32(base + 0x2F0, 0xFFFFFFFF));
  EXPECT_EQ(f.bus.read32(base + PufMmioDevice::kStatus), 0u);
}

}  // namespace
}  // namespace neuropuls::sim
