// System-simulator tests: scheduler semantics, cost models, peripherals,
// and the E10 secure-vs-insecure pipeline invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "accel/network.hpp"
#include "sim/system.hpp"

namespace neuropuls::sim {
namespace {

TEST(Scheduler, TimeAdvancesAndEventsFireInOrder) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_after(100, [&] { order.push_back(2); });
  scheduler.schedule_after(50, [&] { order.push_back(1); });
  scheduler.schedule_after(100, [&] { order.push_back(3); });  // tie: FIFO
  scheduler.advance(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 200u);
  EXPECT_TRUE(scheduler.idle());
}

TEST(Scheduler, AdvancePartialWindow) {
  EventScheduler scheduler;
  bool fired = false;
  scheduler.schedule_after(100, [&] { fired = true; });
  scheduler.advance(99);
  EXPECT_FALSE(fired);
  scheduler.advance(1);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunDrainsQueue) {
  EventScheduler scheduler;
  int count = 0;
  scheduler.schedule_after(10, [&] {
    ++count;
    scheduler.schedule_after(10, [&] { ++count; });
  });
  EXPECT_EQ(scheduler.run(), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(scheduler.now(), 20u);
}

TEST(Scheduler, RejectsPastScheduling) {
  EventScheduler scheduler;
  scheduler.advance(100);
  EXPECT_THROW(scheduler.schedule_at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(ps_from_ns(-1.0), std::invalid_argument);
}

TEST(Stats, CountersTotalsDistributions) {
  StatsRegistry stats;
  stats.count("a");
  stats.count("a", 4);
  stats.add("t", 1.5);
  stats.add("t", 2.5);
  stats.sample("d", 1.0);
  stats.sample("d", 3.0);
  EXPECT_EQ(stats.counter("a"), 5u);
  EXPECT_DOUBLE_EQ(stats.total("t"), 4.0);
  EXPECT_EQ(stats.distribution("d").n, 2u);
  EXPECT_DOUBLE_EQ(stats.distribution("d").mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.distribution("d").min, 1.0);
  EXPECT_EQ(stats.counter("missing"), 0u);
  stats.clear();
  EXPECT_EQ(stats.counter("a"), 0u);
}

TEST(Stats, CsvExportRoundTrips) {
  StatsRegistry stats;
  stats.count("puf.evaluations", 3);
  stats.add("cpu.time_ns", 12.5);
  stats.sample("lat", 1.0);
  stats.sample("lat", 3.0);
  std::ostringstream os;
  stats.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,puf.evaluations,3"), std::string::npos);
  EXPECT_NE(csv.find("total,cpu.time_ns,12.5"), std::string::npos);
  EXPECT_NE(csv.find("distribution,lat,2,2,1,3"), std::string::npos);
}

TEST(CpuModel, TimeMatchesCycleBudget) {
  EventScheduler scheduler;
  StatsRegistry stats;
  CpuCosts costs;
  costs.frequency_hz = 1e9;  // 1 cycle = 1 ns
  CpuModel cpu(scheduler, stats, costs);
  cpu.execute_ops(1000);
  EXPECT_EQ(cpu.cycles(), 1000u);
  EXPECT_NEAR(scheduler.now_ns(), 1000.0, 1.0);
  EXPECT_GT(cpu.energy_nj(), 0.0);
}

TEST(CpuModel, CryptoCostsScaleWithBytes) {
  EventScheduler scheduler;
  StatsRegistry stats;
  CpuModel cpu(scheduler, stats);
  const auto c0 = cpu.cycles();
  cpu.hash_sha256(1000);
  const auto hash_cost = cpu.cycles() - c0;
  cpu.hash_sha256(2000);
  EXPECT_NEAR(static_cast<double>(cpu.cycles() - c0 - hash_cost),
              2.0 * static_cast<double>(hash_cost), 2.0);
  // Modexp dwarfs hashing — the EKE cost story.
  const auto before = cpu.cycles();
  cpu.modexp_2048();
  EXPECT_GT(cpu.cycles() - before, 100u * hash_cost);
}

TEST(MemoryModel, LatencyPlusBandwidth) {
  EventScheduler scheduler;
  StatsRegistry stats;
  MemoryCosts costs;
  costs.latency_ns = 100.0;
  costs.bandwidth_gb_per_s = 1.0;  // 1 byte/ns
  MemoryModel memory(scheduler, stats, costs);
  memory.transfer(1000);
  EXPECT_NEAR(scheduler.now_ns(), 1100.0, 1.0);
  EXPECT_GT(memory.energy_nj(), 0.0);
  EXPECT_EQ(stats.counter("mem.transfers"), 1u);
}

TEST(PufPeripheral, ChargesDeviceLatencyAndLogs) {
  EventScheduler scheduler;
  StatsRegistry stats;
  CpuModel cpu(scheduler, stats);
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 5, 0);
  PufPeripheral peripheral(scheduler, stats, device_puf,
                           device_puf.interrogation_time_s() * 1e9);
  const puf::Challenge c(device_puf.challenge_bytes(), 0x12);
  const auto response = peripheral.evaluate(c, cpu);
  EXPECT_EQ(response.size(), device_puf.response_bytes());
  EXPECT_GE(scheduler.now_ns(), peripheral.response_latency_ns());
  ASSERT_EQ(peripheral.log().size(), 1u);
  EXPECT_EQ(peripheral.log()[0].challenge, c);
  EXPECT_EQ(stats.counter("puf.evaluations"), 1u);
}

TEST(SecureSystem, PhasesProduceSaneNumbers) {
  SecureSystem system(SystemConfig{});
  const auto boot = system.boot_keys();
  EXPECT_GT(boot.time_ns, 0.0);
  EXPECT_GT(boot.cpu_energy_nj, 0.0);
  const auto auth = system.authenticate();
  EXPECT_GT(auth.time_ns, 0.0);
  const auto att = system.attest();
  EXPECT_GT(att.time_ns, 0.0);
  // Attestation hashes all memory: it must dominate one auth session.
  EXPECT_GT(att.time_ns, auth.time_ns);
}

TEST(SecureSystem, LoadBeforeBootThrows) {
  SecureSystem system(SystemConfig{});
  const auto network = accel::make_random_network({4, 4}, 1);
  EXPECT_THROW(system.load_network(network), std::logic_error);
  EXPECT_THROW(system.infer({1, 2, 3, 4}, 1), std::logic_error);
}

TEST(SecureSystem, SecurePipelineCompletesAndBreaksDown) {
  SecureSystem system(SystemConfig{});
  const auto network = accel::make_random_network({8, 16, 4}, 9);
  const std::vector<double> input(8, 0.25);
  const auto report = system.run_secure_pipeline(network, input, 10);
  ASSERT_EQ(report.phases.size(), 5u);
  EXPECT_GT(report.total_time_ns, 0.0);
  EXPECT_GT(report.total_energy_nj, 0.0);
  // Every named phase present.
  for (const char* name :
       {"boot_keys", "authenticate", "attest", "load_network", "infer"}) {
    ASSERT_NE(report.phase(name), nullptr) << name;
    EXPECT_GT(report.phase(name)->time_ns, 0.0) << name;
  }
  EXPECT_EQ(report.phase("missing"), nullptr);
}

TEST(SecureSystem, SecurityOverheadIsOneTimeDominated) {
  // The secure pipeline costs more than the insecure one, but the gap is
  // dominated by one-time services (boot/auth/attest): per-inference
  // marginal cost stays within a small factor.
  const auto network = accel::make_random_network({8, 16, 4}, 9);
  const std::vector<double> input(8, 0.25);

  SecureSystem secure_few(SystemConfig{});
  const auto secure_10 = secure_few.run_secure_pipeline(network, input, 10);
  SecureSystem secure_many(SystemConfig{});
  const auto secure_1000 =
      secure_many.run_secure_pipeline(network, input, 1000);

  SecureSystem insecure_few(SystemConfig{});
  const auto insecure_10 =
      insecure_few.run_insecure_pipeline(network, input, 10);
  SecureSystem insecure_many(SystemConfig{});
  const auto insecure_1000 =
      insecure_many.run_insecure_pipeline(network, input, 1000);

  EXPECT_GT(secure_10.total_time_ns, insecure_10.total_time_ns);

  // Marginal per-inference cost (time difference / added inferences).
  const double secure_marginal =
      (secure_1000.total_time_ns - secure_10.total_time_ns) / 990.0;
  const double insecure_marginal =
      (insecure_1000.total_time_ns - insecure_10.total_time_ns) / 990.0;
  EXPECT_LT(secure_marginal, 20.0 * insecure_marginal);
  // Amortized overhead shrinks with inference count.
  const double overhead_10 =
      secure_10.total_time_ns / insecure_10.total_time_ns;
  const double overhead_1000 =
      secure_1000.total_time_ns / insecure_1000.total_time_ns;
  EXPECT_LT(overhead_1000, overhead_10);
}

TEST(SecureSystem, EkePhaseDominatesAuth) {
  SecureSystem system(SystemConfig{});
  system.boot_keys();
  const auto auth = system.authenticate();
  const auto eke = system.establish_session_key();
  // Two 2048-bit modexps dwarf the hash/MAC session ("computationally
  // more expensive", §IV).
  EXPECT_GT(eke.time_ns, 50.0 * auth.time_ns);
}

TEST(SecureSystem, PipelineWithEkeHasExtraPhase) {
  SecureSystem system(SystemConfig{});
  const auto network = accel::make_random_network({8, 8}, 1);
  const std::vector<double> input(8, 0.1);
  const auto report =
      system.run_secure_pipeline(network, input, 5, /*with_eke=*/true);
  ASSERT_EQ(report.phases.size(), 6u);
  ASSERT_NE(report.phase("session_key"), nullptr);
  EXPECT_GT(report.phase("session_key")->time_ns, 0.0);
}

TEST(SecureSystem, StatsAccumulate) {
  SecureSystem system(SystemConfig{});
  system.boot_keys();
  system.authenticate();
  EXPECT_EQ(system.stats().counter("auth.sessions"), 1u);
  EXPECT_GT(system.stats().counter("puf.evaluations"), 0u);
  EXPECT_GT(system.stats().total("cpu.time_ns"), 0.0);
}

}  // namespace
}  // namespace neuropuls::sim
