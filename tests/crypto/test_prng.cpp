// Statistical sanity tests for the simulation PRNGs. These are the noise
// sources behind every physical model, so their moments must be right.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/prng.hpp"

namespace neuropuls::rng {
namespace {

TEST(SplitMix, KnownSequence) {
  // Reference values for seed 0 from the canonical splitmix64.c.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(s), 0x06c45d188009454fULL);
}

TEST(DeriveSeed, DecorrelatesStreams) {
  const auto s0 = derive_seed(123, 0);
  const auto s1 = derive_seed(123, 1);
  const auto other_root = derive_seed(124, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, other_root);
  // Deterministic.
  EXPECT_EQ(derive_seed(123, 0), s0);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(99), b(99), c(100);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, UniformIntRespectsBound) {
  Xoshiro256 rng(2);
  std::array<int, 7> counts{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 7.0, 5.0 * std::sqrt(kN / 7.0));
  }
}

TEST(Xoshiro, RangeUniform) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 4.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 4.5);
  }
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256 rng(4);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Gaussian, MomentsMatchStandardNormal) {
  Gaussian g(5);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = g.next();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Gaussian, ScaledMoments) {
  Gaussian g(6);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += g.next(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Gaussian, RayleighMean) {
  Gaussian g(7);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += g.rayleigh(1.0);
  // Rayleigh mean = sigma * sqrt(pi/2) ~= 1.2533
  EXPECT_NEAR(sum / kN, 1.2533, 0.02);
}

TEST(Gaussian, ExponentialMean) {
  Gaussian g(8);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += g.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Gaussian, PoissonMeanSmallAndLargeLambda) {
  Gaussian g(9);
  constexpr int kN = 50000;
  double small_sum = 0.0, large_sum = 0.0;
  for (int i = 0; i < kN; ++i) small_sum += static_cast<double>(g.poisson(3.0));
  for (int i = 0; i < kN; ++i) large_sum += static_cast<double>(g.poisson(100.0));
  EXPECT_NEAR(small_sum / kN, 3.0, 0.1);
  EXPECT_NEAR(large_sum / kN, 100.0, 0.5);
  EXPECT_EQ(g.poisson(0.0), 0u);
  EXPECT_EQ(g.poisson(-1.0), 0u);
}

}  // namespace
}  // namespace neuropuls::rng
