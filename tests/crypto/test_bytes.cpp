// Unit tests for the byte-buffer helpers every protocol layer relies on.
#include "crypto/bytes.hpp"

#include <gtest/gtest.h>

namespace neuropuls::crypto {
namespace {

TEST(BytesHex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(BytesHex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesHex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesHex, RejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(CtEqual, EqualBuffers) {
  const Bytes a = {1, 2, 3, 4};
  EXPECT_TRUE(ct_equal(a, a));
}

TEST(CtEqual, UnequalContent) {
  const Bytes a = {1, 2, 3, 4};
  const Bytes b = {1, 2, 3, 5};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, UnequalLength) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3, 0};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, BothEmpty) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(CtEqual, EmptyVsNonEmpty) {
  const Bytes a = {1};
  EXPECT_FALSE(ct_equal(a, Bytes{}));
  EXPECT_FALSE(ct_equal(Bytes{}, a));
}

TEST(CtEqual, ScansFullLengthOnEarlyMismatch) {
  // First byte differs but later bytes match: still unequal, and (by
  // construction — the loop has no exit) evaluated over the full length.
  Bytes a(1024, 0x42), b(1024, 0x42);
  b[0] ^= 0xFF;
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(SecureWipe, ZeroizesRawBuffer) {
  std::uint8_t buffer[64];
  for (auto& b : buffer) b = 0xCD;
  secure_wipe(buffer, sizeof(buffer));
  for (const auto b : buffer) EXPECT_EQ(b, 0u);
}

TEST(SecureWipe, NullAndZeroSizeAreNoOps) {
  secure_wipe(nullptr, 16);  // must not crash
  std::uint8_t one = 0xEE;
  secure_wipe(&one, 0);
  EXPECT_EQ(one, 0xEEu);  // zero-size wipe leaves the byte alone
}

TEST(SecureWipe, VectorOverloadZeroizesThenClears) {
  Bytes buffer(32, 0x99);
  const std::uint8_t* block = buffer.data();
  secure_wipe(buffer);
  EXPECT_TRUE(buffer.empty());
  // clear() keeps the allocation, so the block is still owned — and must
  // hold no residue.
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(block[i], 0u) << i;
}

TEST(SecureWipe, WorksForTriviallyCopyableElementTypes) {
  std::vector<double> activations(8, 3.14);
  secure_wipe(activations);
  EXPECT_TRUE(activations.empty());
}

TEST(XorBytes, Involution) {
  const Bytes a = {0xde, 0xad, 0xbe, 0xef};
  const Bytes b = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a);
}

TEST(XorBytes, LengthMismatchThrows) {
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), std::invalid_argument);
}

TEST(XorInto, MatchesXorBytes) {
  Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0x55};
  const Bytes expected = xor_bytes(a, b);
  xor_into(a, b);
  EXPECT_EQ(a, expected);
}

TEST(Concat, JoinsInOrder) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = {4, 5, 6};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3, 4, 5, 6}));
}

TEST(Endian, U32RoundTrip) {
  Bytes buf(4);
  put_u32_be(buf, 0xdeadbeef);
  EXPECT_EQ(buf, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(get_u32_be(buf), 0xdeadbeefu);
}

TEST(Endian, U64RoundTrip) {
  Bytes buf(8);
  put_u64_be(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(get_u64_be(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
}

TEST(Endian, AppendHelpers) {
  Bytes out;
  append_u32_be(out, 0x01020304);
  append_u64_be(out, 0x05060708090a0b0cULL);
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(get_u32_be(out), 0x01020304u);
  EXPECT_EQ(get_u64_be(ByteView(out).subspan(4)), 0x05060708090a0b0cULL);
}

TEST(Hamming, IdenticalIsZero) {
  const Bytes a = {0xaa, 0x55};
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, a), 0.0);
}

TEST(Hamming, ComplementIsOne) {
  const Bytes a = {0xaa, 0x55};
  const Bytes b = {0x55, 0xaa};
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 1.0);
}

TEST(Hamming, SingleBit) {
  const Bytes a = {0x00, 0x00};
  const Bytes b = {0x00, 0x01};
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 1.0 / 16.0);
}

TEST(Hamming, LengthMismatchThrows) {
  EXPECT_THROW(fractional_hamming_distance(Bytes{1}, Bytes{1, 2}),
               std::invalid_argument);
}

TEST(Popcount, CountsAllBytes) {
  EXPECT_EQ(popcount(Bytes{0xff, 0x0f, 0x01}), 13u);
  EXPECT_EQ(popcount(Bytes{}), 0u);
}

TEST(BytesOf, CopiesText) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{'a', 'b'}));
}

}  // namespace
}  // namespace neuropuls::crypto
