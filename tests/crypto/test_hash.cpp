// SHA-256 / HMAC / HKDF tests against published vectors (FIPS 180-4,
// RFC 4231, RFC 5869) plus incremental-interface consistency checks.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace neuropuls::crypto {
namespace {

std::string hex_digest(ByteView data) {
  return to_hex(Sha256::hash(data));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(Bytes{}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(bytes_of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_digest(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = bytes_of("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(ByteView(data).first(split));
    h.update(ByteView(data).subspan(split));
    const auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(data))
        << "split at " << split;
  }
}

// The multi-block compression path (one process_blocks call per bulk
// update) vs block-at-a-time buffering: chunk sizes below 64 force every
// block through the staging buffer, larger ones stream whole blocks
// directly — the digest must not depend on the route.
TEST(Sha256, MultiBlockStreamingMatchesBufferedBlocks) {
  Bytes data(1009);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const Bytes oneshot = Sha256::hash(data);
  for (const std::size_t chunk : {1u, 63u, 64u, 65u, 128u, 333u}) {
    Sha256 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(ByteView(data).subspan(off, std::min(chunk,
                                                    data.size() - off)));
    }
    const auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), oneshot) << "chunk " << chunk;
  }
}

TEST(Sha256, ResetReusesContext) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(bytes_of("Jefe"),
                         bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key of 20 0xaa bytes, data of 50 0xdd bytes.
TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  const Bytes key = bytes_of("secret key");
  const Bytes data = bytes_of("message in several parts");
  HmacSha256 mac(key);
  mac.update(ByteView(data).first(7));
  mac.update(ByteView(data).subspan(7));
  EXPECT_EQ(mac.finalize(), hmac_sha256(key, data));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: empty salt and info.
TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ByteView{}, ikm, ByteView{}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOversizedRequest) {
  const Bytes prk(32, 0x01);
  EXPECT_THROW(hkdf_expand(prk, ByteView{}, 255 * 32 + 1),
               std::invalid_argument);
}

TEST(Hkdf, DistinctInfoGivesIndependentKeys) {
  const Bytes ikm = bytes_of("puf-derived key material");
  const Bytes k1 = hkdf(ByteView{}, ikm, bytes_of("enc"), 32);
  const Bytes k2 = hkdf(ByteView{}, ikm, bytes_of("mac"), 32);
  EXPECT_NE(k1, k2);
}

// Reference vector from the SipHash paper (Appendix A).
TEST(SipHash, PaperVector) {
  std::array<std::uint8_t, 16> key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  Bytes msg(15);
  for (int i = 0; i < 15; ++i) msg[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(siphash24(key, msg), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, KeyednessAndDeterminism) {
  std::array<std::uint8_t, 16> k1{};
  std::array<std::uint8_t, 16> k2{};
  k2[0] = 1;
  const Bytes msg = bytes_of("bus transaction");
  EXPECT_EQ(siphash24(k1, msg), siphash24(k1, msg));
  EXPECT_NE(siphash24(k1, msg), siphash24(k2, msg));
}

}  // namespace
}  // namespace neuropuls::crypto
