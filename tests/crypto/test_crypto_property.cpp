// Property sweeps over the crypto substrate: incremental/one-shot hash
// agreement, cipher involutions, and per-bit tamper detection, across a
// grid of message lengths chosen to straddle every block boundary.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prng.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::crypto {
namespace {

class MessageLengths : public ::testing::TestWithParam<std::size_t> {
 protected:
  Bytes message() const {
    rng::Xoshiro256 rng(GetParam() * 31 + 7);
    Bytes data(GetParam());
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    return data;
  }
};

TEST_P(MessageLengths, ShaIncrementalEqualsOneShot) {
  const Bytes data = message();
  // Split at every third boundary candidate.
  for (std::size_t split :
       {std::size_t{0}, data.size() / 3, data.size() / 2, data.size()}) {
    Sha256 h;
    h.update(ByteView(data).first(split));
    h.update(ByteView(data).subspan(split));
    const auto digest = h.finalize();
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256::hash(data))
        << "len=" << data.size() << " split=" << split;
  }
}

TEST_P(MessageLengths, AesCtrInvolution) {
  const Bytes data = message();
  const Bytes key(16, 0x5A);
  const Bytes nonce(16, 0x01);
  EXPECT_EQ(aes_ctr(key, nonce, aes_ctr(key, nonce, data)), data);
}

TEST_P(MessageLengths, ChaChaInvolution) {
  const Bytes data = message();
  const Bytes key(32, 0x5A);
  const Bytes nonce(12, 0x01);
  EXPECT_EQ(chacha20_xor(key, nonce, 3, chacha20_xor(key, nonce, 3, data)),
            data);
}

TEST_P(MessageLengths, SealedFrameRoundTrip) {
  const Bytes data = message();
  const Bytes key = bytes_of("property key");
  const Bytes nonce(16, 0x07);
  EXPECT_EQ(aes_ctr_then_mac_open(key, aes_ctr_then_mac_seal(key, nonce, data)),
            data);
}

TEST_P(MessageLengths, CiphertextSameLengthAsPlaintext) {
  const Bytes data = message();
  const Bytes key(16, 0x11);
  const Bytes nonce(16, 0x22);
  EXPECT_EQ(aes_ctr(key, nonce, data).size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, MessageLengths,
                         ::testing::Values(0ul, 1ul, 15ul, 16ul, 17ul, 55ul,
                                           56ul, 63ul, 64ul, 65ul, 127ul,
                                           128ul, 129ul, 1000ul));

// Every single-bit flip anywhere in a sealed frame must be detected.
TEST(TamperExhaustive, SealedFrameEveryBitPosition) {
  const Bytes key = bytes_of("tamper key");
  const Bytes nonce(16, 0x09);
  const Bytes plaintext = bytes_of("short secret");
  const Bytes frame = aes_ctr_then_mac_seal(key, nonce, plaintext);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = frame;
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_THROW(aes_ctr_then_mac_open(key, mutated), std::runtime_error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// Every single-bit flip in a MAC'd message changes the HMAC.
TEST(TamperExhaustive, HmacEveryBitPosition) {
  const Bytes key = bytes_of("hmac key");
  const Bytes msg = bytes_of("authenticated");
  const Bytes reference = hmac_sha256(key, msg);
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = msg;
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(hmac_sha256(key, mutated), reference);
    }
  }
}

// Avalanche: flipping one input bit flips ~half the SHA-256 output bits.
TEST(Avalanche, Sha256HalfTheBits) {
  const Bytes base = bytes_of("avalanche test input");
  const Bytes h0 = Sha256::hash(base);
  double total = 0.0;
  int cases = 0;
  for (std::size_t byte = 0; byte < base.size(); byte += 3) {
    Bytes mutated = base;
    mutated[byte] ^= 0x01;
    total += fractional_hamming_distance(h0, Sha256::hash(mutated));
    ++cases;
  }
  EXPECT_NEAR(total / cases, 0.5, 0.08);
}

// AES key-avalanche: one key bit flips ~half the ciphertext block.
TEST(Avalanche, AesKeyBit) {
  Bytes key(16, 0x42);
  Bytes block_in = from_hex("00112233445566778899aabbccddeeff");
  auto encrypt = [&](const Bytes& k) {
    Bytes block = block_in;
    Aes(k).encrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
    return block;
  };
  const Bytes reference = encrypt(key);
  double total = 0.0;
  int cases = 0;
  for (std::size_t byte = 0; byte < key.size(); ++byte) {
    Bytes mutated_key = key;
    mutated_key[byte] ^= 0x80;
    total += fractional_hamming_distance(reference, encrypt(mutated_key));
    ++cases;
  }
  EXPECT_NEAR(total / cases, 0.5, 0.06);
}

// DRBG streams with related seeds are uncorrelated.
class SeedPairs : public ::testing::TestWithParam<int> {};

TEST_P(SeedPairs, RelatedSeedsUncorrelatedStreams) {
  Bytes seed_a = bytes_of("related seed base");
  Bytes seed_b = seed_a;
  seed_b[static_cast<std::size_t>(GetParam()) % seed_b.size()] ^= 0x01;
  ChaChaDrbg a(seed_a), b(seed_b);
  const Bytes stream_a = a.generate(512);
  const Bytes stream_b = b.generate(512);
  EXPECT_NEAR(fractional_hamming_distance(stream_a, stream_b), 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(FlipPositions, SeedPairs,
                         ::testing::Values(0, 3, 7, 11, 16));

}  // namespace
}  // namespace neuropuls::crypto
