// BigUint arithmetic and Montgomery modexp tests, including the RFC 3526
// groups and DH key agreement used by the EKE AKA service.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "crypto/dh.hpp"
#include "crypto/prng.hpp"

namespace neuropuls::crypto {
namespace {

TEST(BigUint, HexRoundTrip) {
  const auto x = BigUint::from_hex("deadbeefcafebabe0123456789abcdef00");
  EXPECT_EQ(x.to_hex(), "deadbeefcafebabe0123456789abcdef00");
  EXPECT_EQ(BigUint{}.to_hex(), "0");
  EXPECT_EQ(BigUint(0x1234).to_hex(), "1234");
}

TEST(BigUint, BytesRoundTrip) {
  const Bytes raw = from_hex("0102030405060708090a0b0c0d");
  const auto x = BigUint::from_bytes_be(raw);
  EXPECT_EQ(x.to_bytes_be(raw.size()), raw);
  // Leading zeros are restored by padding.
  const Bytes padded = x.to_bytes_be(16);
  EXPECT_EQ(padded.size(), 16u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[3], 0x01);
}

TEST(BigUint, BitLength) {
  EXPECT_EQ(BigUint{}.bit_length(), 0u);
  EXPECT_EQ(BigUint(1).bit_length(), 1u);
  EXPECT_EQ(BigUint(0xFF).bit_length(), 8u);
  EXPECT_EQ((BigUint(1) << 64).bit_length(), 65u);
}

TEST(BigUint, AdditionCarries) {
  const auto max64 = BigUint::from_hex("ffffffffffffffff");
  EXPECT_EQ((max64 + BigUint(1)).to_hex(), "10000000000000000");
}

TEST(BigUint, SubtractionBorrows) {
  const auto x = BigUint::from_hex("10000000000000000");
  EXPECT_EQ((x - BigUint(1)).to_hex(), "ffffffffffffffff");
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::underflow_error);
}

TEST(BigUint, MultiplicationCrossLimb) {
  const auto a = BigUint::from_hex("ffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffffffffffe0000000000000001");
  EXPECT_TRUE((a * BigUint{}).is_zero());
}

TEST(BigUint, ShiftRoundTrip) {
  const auto x = BigUint::from_hex("123456789abcdef0fedcba9876543210");
  EXPECT_EQ(((x << 37) >> 37), x);
  EXPECT_EQ((x >> 200).to_hex(), "0");
}

TEST(BigUint, DivModSingleLimb) {
  const auto x = BigUint::from_hex("123456789abcdef00");
  const auto [q, r] = BigUint::divmod(x, BigUint(1000));
  EXPECT_EQ(q * BigUint(1000) + r, x);
  EXPECT_TRUE(r < BigUint(1000));
}

TEST(BigUint, DivModMultiLimbIdentity) {
  rng::Xoshiro256 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes nbytes(1 + rng.uniform_int(48));
    Bytes dbytes(1 + rng.uniform_int(24));
    for (auto& b : nbytes) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : dbytes) b = static_cast<std::uint8_t>(rng.next());
    const auto n = BigUint::from_bytes_be(nbytes);
    const auto d = BigUint::from_bytes_be(dbytes);
    if (d.is_zero()) continue;
    const auto [q, r] = BigUint::divmod(n, d);
    EXPECT_EQ(q * d + r, n);
    EXPECT_TRUE(r < d);
  }
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint::divmod(BigUint(1), BigUint{}), std::domain_error);
}

TEST(Modexp, SmallKnownValues) {
  // 3^7 mod 10 = 2187 mod 10 = 7
  EXPECT_EQ(modexp(BigUint(3), BigUint(7), BigUint(10+1)).to_hex(),
            BigUint(2187 % 11).to_hex());
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(modexp(BigUint(5), BigUint(100002), BigUint(100003)).to_hex(), "1");
  // Exponent zero.
  EXPECT_EQ(modexp(BigUint(12345), BigUint{}, BigUint(97)).to_hex(), "1");
  // Modulus one collapses everything to zero.
  EXPECT_TRUE(modexp(BigUint(5), BigUint(5), BigUint(1)).is_zero());
}

TEST(Modexp, MatchesNaiveOnRandomOddModuli) {
  rng::Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t m = (rng.next() | 1) >> 16;  // odd, 48-bit
    if (m <= 2) continue;
    const std::uint64_t b = rng.next() % m;
    const std::uint64_t e = rng.next() % 1000;
    // Naive repeated multiplication with __int128.
    unsigned __int128 acc = 1;
    for (std::uint64_t i = 0; i < e; ++i) acc = (acc * b) % m;
    const auto got = modexp(BigUint(b), BigUint(e), BigUint(m));
    EXPECT_EQ(got.to_hex(), BigUint(static_cast<std::uint64_t>(acc)).to_hex());
  }
}

TEST(Modexp, EvenModulusFallback) {
  // 7^5 mod 12 = 16807 mod 12 = 7
  EXPECT_EQ(modexp(BigUint(7), BigUint(5), BigUint(12)).to_hex(), "7");
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(BigUint(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(BigUint(1)), std::invalid_argument);
}

TEST(Montgomery, LargeGroupSelfConsistency) {
  // (g^a)^b == (g^b)^a mod p in the 2048-bit group — exercises the full
  // Montgomery pipeline at protocol scale.
  const auto& group = DhGroup::modp2048();
  const auto a = BigUint::from_hex("0123456789abcdef0123456789abcdef"
                                   "0123456789abcdef0123456789abcdef");
  const auto b = BigUint::from_hex("fedcba9876543210fedcba9876543210"
                                   "fedcba9876543210fedcba9876543211");
  const auto ga = modexp(group.generator, a, group.prime);
  const auto gb = modexp(group.generator, b, group.prime);
  EXPECT_EQ(modexp(ga, b, group.prime), modexp(gb, a, group.prime));
}

TEST(Dh, GroupConstantsSane) {
  EXPECT_EQ(DhGroup::modp2048().prime.bit_length(), 2048u);
  EXPECT_EQ(DhGroup::modp1536().prime.bit_length(), 1536u);
  EXPECT_TRUE(DhGroup::modp2048().prime.is_odd());
  EXPECT_EQ(DhGroup::modp2048().prime_bytes, 256u);
}

TEST(Dh, KeyAgreement) {
  const auto& group = DhGroup::modp1536();  // smaller group: faster test
  ChaChaDrbg rng_a(bytes_of("alice")), rng_b(bytes_of("bob"));
  const auto alice = dh_generate(group, rng_a);
  const auto bob = dh_generate(group, rng_b);
  const Bytes s1 = dh_shared_secret(group, alice.secret, bob.public_value);
  const Bytes s2 = dh_shared_secret(group, bob.secret, alice.public_value);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), group.prime_bytes);
}

TEST(Dh, RejectsDegeneratePublicValues) {
  const auto& group = DhGroup::modp1536();
  EXPECT_FALSE(dh_public_is_valid(group, BigUint{}));
  EXPECT_FALSE(dh_public_is_valid(group, BigUint(1)));
  EXPECT_FALSE(dh_public_is_valid(group, group.prime - BigUint(1)));
  EXPECT_FALSE(dh_public_is_valid(group, group.prime));
  EXPECT_TRUE(dh_public_is_valid(group, BigUint(2)));
  EXPECT_THROW(dh_shared_secret(group, BigUint(5), BigUint(1)),
               std::runtime_error);
}

TEST(Dh, DistinctSeedsDistinctKeys) {
  const auto& group = DhGroup::modp1536();
  ChaChaDrbg r1(bytes_of("s1")), r2(bytes_of("s2"));
  EXPECT_NE(dh_generate(group, r1).public_value.to_hex(),
            dh_generate(group, r2).public_value.to_hex());
}

}  // namespace
}  // namespace neuropuls::crypto
