// AES (FIPS 197 / SP 800-38A / SP 800-38B) and ChaCha20 (RFC 8439) tests
// against published vectors, plus the sealed-frame helpers used at the
// accelerator hardware boundary.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"

namespace neuropuls::crypto {
namespace {

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  cipher.encrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  cipher.decrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  cipher.encrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(to_hex(block), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  cipher.encrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(to_hex(block), "8ea2b7ca516745bfeafc49904b496089");
  cipher.decrypt_block(std::span<std::uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33, 0)), std::invalid_argument);
}

// NIST SP 800-38A F.5.1: CTR-AES128 encrypt.
TEST(AesCtr, Sp800_38aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes counter = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plaintext = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expected = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  EXPECT_EQ(aes_ctr(key, counter, plaintext), expected);
  // CTR is an involution.
  EXPECT_EQ(aes_ctr(key, counter, expected), plaintext);
}

TEST(AesCtr, PartialBlock) {
  const Bytes key(16, 0x42);
  const Bytes nonce(16, 0x00);
  const Bytes msg = bytes_of("short");
  const Bytes ct = aes_ctr(key, nonce, msg);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_EQ(aes_ctr(key, nonce, ct), msg);
}

TEST(AesCtr, RejectsBadNonce) {
  EXPECT_THROW(aes_ctr(Bytes(16, 0), Bytes(12, 0), Bytes(4, 0)),
               std::invalid_argument);
}

// NIST SP 800-38B D.1: AES-128 CMAC examples.
TEST(AesCmac, EmptyMessage) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  EXPECT_EQ(to_hex(aes_cmac(key, Bytes{})),
            "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmac, Example2) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(aes_cmac(key, msg)), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmac, Example3PartialBlock) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes msg = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(to_hex(aes_cmac(key, msg)), "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmac, Example4FullBlocks) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes msg = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(aes_cmac(key, msg)), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(SealedFrame, RoundTrip) {
  const Bytes key = bytes_of("device binding key");
  const Bytes nonce(16, 0x07);
  const Bytes msg = bytes_of("neural network weights, layer 0");
  const Bytes frame = aes_ctr_then_mac_seal(key, nonce, msg);
  EXPECT_EQ(aes_ctr_then_mac_open(key, frame), msg);
}

TEST(SealedFrame, DetectsTampering) {
  const Bytes key = bytes_of("device binding key");
  const Bytes nonce(16, 0x07);
  Bytes frame = aes_ctr_then_mac_seal(key, nonce, bytes_of("payload"));
  frame[20] ^= 0x01;
  EXPECT_THROW(aes_ctr_then_mac_open(key, frame), std::runtime_error);
}

TEST(SealedFrame, DetectsWrongKey) {
  const Bytes nonce(16, 0x07);
  const Bytes frame =
      aes_ctr_then_mac_seal(bytes_of("key A"), nonce, bytes_of("payload"));
  EXPECT_THROW(aes_ctr_then_mac_open(bytes_of("key B"), frame),
               std::runtime_error);
}

TEST(SealedFrame, RejectsTruncatedFrame) {
  EXPECT_THROW(aes_ctr_then_mac_open(bytes_of("k"), Bytes(31, 0)),
               std::runtime_error);
}

// RFC 8439 section 2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes expected = from_hex(
      "6e2e359a2568f98041ba0728dd0d6981"
      "e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b357"
      "1639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e"
      "52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42"
      "874d");
  EXPECT_EQ(chacha20_xor(key, nonce, 1, plaintext), expected);
}

TEST(ChaCha20, Involution) {
  const Bytes key(32, 0xaa);
  const Bytes nonce(12, 0x01);
  const Bytes msg = bytes_of("encrypt me twice and you get me back");
  EXPECT_EQ(chacha20_xor(key, nonce, 7, chacha20_xor(key, nonce, 7, msg)),
            msg);
}

TEST(ChaCha20, RejectsBadParams) {
  EXPECT_THROW(chacha20_xor(Bytes(31, 0), Bytes(12, 0), 0, Bytes{}),
               std::invalid_argument);
  EXPECT_THROW(chacha20_xor(Bytes(32, 0), Bytes(11, 0), 0, Bytes{}),
               std::invalid_argument);
}

TEST(ChaChaDrbg, DeterministicAcrossInstances) {
  ChaChaDrbg a(bytes_of("seed"));
  ChaChaDrbg b(bytes_of("seed"));
  EXPECT_EQ(a.generate(100), b.generate(100));
}

TEST(ChaChaDrbg, SeedSensitivity) {
  ChaChaDrbg a(bytes_of("seed-1"));
  ChaChaDrbg b(bytes_of("seed-2"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(ChaChaDrbg, UniformRespectsBound) {
  ChaChaDrbg rng(bytes_of("bound test"));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(ChaChaDrbg, ReseedChangesStream) {
  ChaChaDrbg a(bytes_of("seed"));
  ChaChaDrbg b(bytes_of("seed"));
  a.generate(16);
  b.generate(16);
  a.reseed(bytes_of("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

// Bit-identity of the batched kernels against their scalar forms: the
// lane-interleaved / pipelined paths are pure layout transforms and must
// never change a single output bit.

// The 4-lane ChaCha20 kernel vs one-block-at-a-time calls. A 64-byte
// message takes the scalar tail path, so encrypting a long message in one
// call (lane groups + tail) must equal stitching per-block scalar calls
// at successive counters.
TEST(ChaCha20, BatchedKeystreamMatchesScalarBlocks) {
  Bytes key(32), nonce(12);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0x13 * i + 5);
  }
  for (std::size_t i = 0; i < nonce.size(); ++i) {
    nonce[i] = static_cast<std::uint8_t>(0x31 * i + 7);
  }
  // 6.5 blocks: one full lane group of 4, a scalar tail of 2, a partial.
  Bytes msg(416 - 32);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 37);
  }
  const Bytes bulk = chacha20_xor(key, nonce, 9, msg);
  Bytes stitched;
  for (std::size_t off = 0; off < msg.size(); off += 64) {
    const std::size_t n = std::min<std::size_t>(64, msg.size() - off);
    const Bytes piece = chacha20_xor(
        key, nonce, static_cast<std::uint32_t>(9 + off / 64),
        ByteView(msg).subspan(off, n));
    stitched.insert(stitched.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(bulk, stitched);
}

TEST(ChaCha20, InplaceMatchesCopyingXor) {
  const Bytes key(32, 0x5c);
  const Bytes nonce(12, 0x36);
  Bytes data = bytes_of("in-place and copying paths share one keystream");
  const Bytes expected = chacha20_xor(key, nonce, 3, data);
  chacha20_xor_inplace(key, nonce, 3, data);
  EXPECT_EQ(data, expected);
}

// The AES round-major multi-block path vs encrypt_block per block.
TEST(Aes, EncryptBlocksMatchesSingleBlockCalls) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes cipher(key);
  Bytes batched(16 * 9);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    batched[i] = static_cast<std::uint8_t>(i * 73 + 11);
  }
  Bytes scalar = batched;
  cipher.encrypt_blocks(batched.data(), 9);
  for (std::size_t b = 0; b < 9; ++b) {
    cipher.encrypt_block(
        std::span<std::uint8_t, 16>(scalar.data() + 16 * b, 16));
  }
  EXPECT_EQ(batched, scalar);
}

// The pipelined CTR path vs a hand-rolled single-block CTR with the
// big-endian low-32 counter increment — pins both keystream bits and
// counter semantics across the 8-block pipeline boundary.
TEST(AesCtr, PipelinedMatchesManualCounterWalk) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes counter = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes msg(200);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 29));
  }
  Bytes expected = msg;
  Aes cipher(key);
  for (std::size_t off = 0; off < msg.size(); off += 16) {
    Bytes keystream = counter;
    cipher.encrypt_block(std::span<std::uint8_t, 16>(keystream.data(), 16));
    for (std::size_t i = 0; i < std::min<std::size_t>(16, msg.size() - off);
         ++i) {
      expected[off + i] ^= keystream[i];
    }
    for (int b = 15; b >= 12; --b) {  // wrapping big-endian low-32 increment
      if (++counter[static_cast<std::size_t>(b)] != 0) break;
    }
  }
  EXPECT_EQ(aes_ctr(key, from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"), msg),
            expected);
}

// DRBG bulk fills vs single-byte draws: the stream position advances
// identically, so mixed call patterns stay reproducible.
TEST(ChaChaDrbg, BulkGenerateMatchesByteAtATime) {
  ChaChaDrbg bulk(bytes_of("bulk-vs-bytes"));
  ChaChaDrbg bytes(bytes_of("bulk-vs-bytes"));
  const Bytes big = bulk.generate(333);
  Bytes stitched;
  for (std::size_t i = 0; i < 333; ++i) {
    const Bytes one = bytes.generate(1);
    stitched.push_back(one[0]);
  }
  EXPECT_EQ(big, stitched);
}

TEST(ChaChaDrbg, KeystreamXorConsumesSameStreamAsGenerate) {
  ChaChaDrbg a(bytes_of("xor-stream"));
  ChaChaDrbg b(bytes_of("xor-stream"));
  // Interleave partial-block and multi-block spans on both instances.
  for (const std::size_t n : {5u, 64u, 130u, 1u, 200u}) {
    Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>(i + n);
    }
    Bytes xored = data;
    a.keystream_xor(xored);
    const Bytes stream = b.generate(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] ^= stream[i];
    }
    EXPECT_EQ(xored, data) << "span length " << n;
  }
  // Both instances are now at the same position.
  EXPECT_EQ(a.generate(32), b.generate(32));
}

TEST(ChaChaDrbg, GenerateSpansBlockBoundaries) {
  ChaChaDrbg a(bytes_of("boundary"));
  ChaChaDrbg b(bytes_of("boundary"));
  // 130 bytes crosses two 64-byte keystream blocks.
  const Bytes big = a.generate(130);
  Bytes stitched = b.generate(50);
  const Bytes rest = b.generate(80);
  stitched.insert(stitched.end(), rest.begin(), rest.end());
  EXPECT_EQ(big, stitched);
}

}  // namespace
}  // namespace neuropuls::crypto
