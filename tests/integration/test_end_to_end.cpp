// Cross-module integration tests: the complete Fig. 1 service stack
// chained end to end, with each stage's output feeding the next —
// TRNG -> enrollment, weak PUF -> keys -> Table I, mutual auth -> CRP ->
// EKE -> secure channel -> encrypted inference, attestation gating.
#include <gtest/gtest.h>

#include <memory>

#include "accel/secure_api.hpp"
#include "core/aka_eke.hpp"
#include "core/attestation.hpp"
#include "core/key_manager.hpp"
#include "core/mutual_auth.hpp"
#include "core/secure_channel.hpp"
#include "crypto/sha256.hpp"
#include "puf/composite.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/spectral_puf.hpp"
#include "puf/trng.hpp"

namespace neuropuls {
namespace {

TEST(EndToEnd, TrngSeedsEnrollmentKeysDriveTableOne) {
  // The device's own TRNG supplies the enrollment randomness; the derived
  // key drives the encrypted accelerator API.
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 500, 0);
  puf::PhotonicTrng trng(device_puf,
                         puf::Challenge(device_puf.challenge_bytes(), 0x77));
  crypto::ChaChaDrbg enrollment_rng(trng.conditioned_bytes(32));

  core::KeyManager keys(device_puf);
  const auto record = keys.enroll(enrollment_rng);
  const auto derived = keys.derive(record);
  ASSERT_TRUE(derived.has_value());

  accel::SecureAccelerator accelerator(std::make_unique<accel::DigitalMvm>(),
                                       derived->encryption_key.clone());
  const auto network = accel::make_random_network({4, 4}, 3);
  accelerator.load_network(accel::SecureAccelerator::encrypt_network(
      network, derived->encryption_key.reveal(), 1));
  const auto out = accel::SecureAccelerator::decrypt_output(
      accelerator.execute_network(accel::SecureAccelerator::encrypt_input(
          {1.0, 2.0, 3.0, 4.0}, derived->encryption_key.reveal(), 2)),
      derived->encryption_key.reveal());
  EXPECT_EQ(out.size(), 4u);
}

TEST(EndToEnd, SpectralWeakPufKeysDriveTableOne) {
  // Same flow, keyed by the *spectral* weak PUF (the other photonic
  // architecture) — the two PUFs are interchangeable at the KeyManager
  // interface.
  puf::SpectralPufConfig cfg;
  cfg.rings = 12;
  cfg.wavelength_channels = 1024;
  puf::SpectralMicroringPuf weak_puf(cfg, 500, 1);
  core::KeyManager keys(weak_puf);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e2e-spectral"));
  const auto record = keys.enroll(rng);
  const auto derived = keys.derive(record);
  ASSERT_TRUE(derived.has_value());

  accel::SecureAccelerator accelerator(
      std::make_unique<accel::PhotonicMvm>(accel::PhotonicMvmConfig{}, 9),
      derived->encryption_key.clone());
  const auto network = accel::make_random_network({4, 2}, 5);
  accelerator.load_network(accel::SecureAccelerator::encrypt_network(
      network, derived->encryption_key.reveal(), 1));
  EXPECT_TRUE(accelerator.network_loaded());
}

TEST(EndToEnd, AuthRotatedCrpSeedsEkeAndSecureChannel) {
  // After a mutual-auth session both sides hold the fresh CRP r_{i+1};
  // it becomes the EKE password; the EKE session key opens the secure
  // channel; encrypted inference results flow over it.
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 501, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e2e-chain"));
  const auto provisioned = core::provision(device_puf, rng);
  const crypto::Bytes firmware = crypto::bytes_of("fw");
  core::AuthDevice device(device_puf, provisioned.device_crp, firmware);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(firmware),
                              device_puf.challenge_bytes());
  net::DuplexChannel channel;
  ASSERT_TRUE(core::run_auth_session(verifier, device, channel, 1, 0x11));
  ASSERT_TRUE(common::ct_equal(device.current_response(),
                               verifier.current_secret()));

  // EKE keyed by the rotated CRP (test-only unwrap of both copies).
  const auto unwrap = [](const common::SecretBytes& secret) {
    const auto view = secret.reveal();
    return crypto::Bytes(view.begin(), view.end());
  };
  auto handshake = core::run_eke_handshake(
      unwrap(verifier.current_secret()), unwrap(device.current_response()),
      crypto::DhGroup::modp1536(), 2, 99);
  ASSERT_TRUE(handshake.keys_match);

  // Secure channel carries a ciphered inference result.
  core::SecureChannel v_end(std::move(handshake.initiator.session_key), true);
  core::SecureChannel d_end(std::move(handshake.responder.session_key), false);

  const crypto::Bytes inference_key = crypto::bytes_of("accel key");
  accel::SecureAccelerator accelerator(
      std::make_unique<accel::DigitalMvm>(),
      common::SecretBytes::copy_of(inference_key));
  accelerator.load_network(accel::SecureAccelerator::encrypt_network(
      accel::make_random_network({2, 2}, 1), inference_key, 1));
  const auto ciphered_result = accelerator.execute_network(
      accel::SecureAccelerator::encrypt_input({0.5, -0.5}, inference_key, 2));

  const auto record = d_end.seal(ciphered_result);
  const auto received = v_end.open(record);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, ciphered_result);
}

TEST(EndToEnd, AttestationGatesNetworkLoad) {
  // Policy flow: the verifier only releases the (encrypted) network to a
  // device that passes attestation; a compromised device never gets it.
  const auto cfg = puf::small_photonic_config();
  puf::PhotonicPuf device_puf(cfg, 502, 0);
  puf::PhotonicPuf model(cfg, 502, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e2e-gate"));
  crypto::Bytes firmware = rng.generate(8192);

  core::AttestationConfig att_config;
  att_config.chunk_size = 512;
  core::AttestVerifier verifier(model, firmware, att_config,
                                core::AttestationCostModel{});

  auto attempt_load = [&](core::AttestDevice& device,
                          std::uint64_t session) -> bool {
    const auto request = verifier.start(session, 1000 + session, rng);
    const auto report = device.handle_request(request);
    if (!report) return false;
    const auto outcome = verifier.check(
        *report, verifier.honest_time_ns() * device.last_time_factor());
    return outcome.accepted;
  };

  core::AttestDevice honest(device_puf, firmware, att_config);
  EXPECT_TRUE(attempt_load(honest, 1));

  core::AttestDevice compromised(device_puf, firmware, att_config);
  compromised.corrupt_memory(100, 0x66);
  EXPECT_FALSE(attempt_load(compromised, 2));
}

TEST(EndToEnd, CompositeBindingGatesAttestation) {
  // §IV: the composite PIC+ASIC response "can be used to assess the
  // genuine character of the accelerator as a whole". Attestation is
  // where that check bites: the verifier's model is the *enrolled
  // assembly*; swap either chip and the chained pPUF responses (and thus
  // the digest) diverge, even though the firmware is pristine.
  auto make_composite = [](std::uint64_t pic_index, std::uint64_t asic_seed) {
    return puf::CompositePuf(
        std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(), 503,
                                           pic_index),
        std::make_unique<puf::SramPuf>(puf::SramPufConfig{}, asic_seed));
  };
  puf::CompositePuf enrolled_model = make_composite(0, 900);

  crypto::ChaChaDrbg rng(crypto::bytes_of("e2e-bind"));
  const crypto::Bytes firmware = rng.generate(4096);
  core::AttestationConfig att_config;
  att_config.chunk_size = 512;
  core::AttestVerifier verifier(enrolled_model, firmware, att_config,
                                core::AttestationCostModel{});

  auto attest = [&](puf::Puf& assembly, std::uint64_t session) {
    core::AttestDevice device(assembly, firmware, att_config);
    const auto request = verifier.start(session, 3000 + session, rng);
    const auto report = device.handle_request(request);
    const auto outcome =
        verifier.check(*report, verifier.honest_time_ns());
    return outcome.accepted;
  };

  puf::CompositePuf genuine = make_composite(0, 900);
  EXPECT_TRUE(attest(genuine, 1));

  puf::CompositePuf swapped_asic = make_composite(0, 901);
  EXPECT_FALSE(attest(swapped_asic, 2));

  puf::CompositePuf swapped_pic = make_composite(1, 900);
  EXPECT_FALSE(attest(swapped_pic, 3));
}

TEST(EndToEnd, ChallengeEncryptedStrongPufWorksInProtocols) {
  // The ref.-[30] hardened configuration (weak-PUF-keyed challenge
  // encryption around the photonic strong PUF) must remain protocol-
  // compatible: authentication works unchanged.
  puf::SramPuf weak(puf::SramPufConfig{}, 33);
  const auto weak_key = weak.evaluate_noiseless({});
  puf::EncryptedChallengePuf hardened(
      std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(), 504, 0),
      weak_key);

  crypto::ChaChaDrbg rng(crypto::bytes_of("e2e-enc"));
  const auto provisioned = core::provision(hardened, rng);
  const crypto::Bytes firmware = crypto::bytes_of("fw");
  core::AuthDevice device(hardened, provisioned.device_crp, firmware);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(firmware),
                              hardened.challenge_bytes());
  net::DuplexChannel channel;
  for (std::uint64_t session = 1; session <= 3; ++session) {
    EXPECT_TRUE(core::run_auth_session(verifier, device, channel, session,
                                       session * 5));
  }
}

}  // namespace
}  // namespace neuropuls
