// Runtime behavior of the annotated lock wrappers (common/mutex.hpp).
// The Clang capability analysis proves lock *discipline* at compile time
// (tests/negative_compile/); these tests pin down the wrappers' dynamic
// semantics — exclusion, the relock toggle, the try-first contention
// probe, CondVar wakeups, and reader sharing — on every compiler,
// including the GCC builds where the annotations are no-ops.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace neuropuls::common {
namespace {

TEST(MutexLockTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr long kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (long n = 0; n < kIncrements; ++n) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  const MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexLockTest, UnlockReleasesAndLockReacquires) {
  Mutex mu;
  MutexLock lock(mu);

  // After the early release the mutex is actually free...
  lock.unlock();
  bool acquired = mu.try_lock();
  EXPECT_TRUE(acquired);
  if (acquired) mu.unlock();

  // ...and after relocking it is actually held again.
  lock.lock();
  std::thread prober([&] {
    bool got = mu.try_lock();
    EXPECT_FALSE(got);
    if (got) mu.unlock();
  });
  prober.join();
}

TEST(MutexLockTest, TryFirstReportsUncontendedFastPath) {
  Mutex mu;
  bool contended = true;
  const MutexLock lock(mu, contended);
  EXPECT_FALSE(contended);
}

TEST(MutexLockTest, TryFirstReportsContention) {
  // The contended=true path needs a real collision; retry until the
  // helper thread demonstrably hit the blocked slow path (each attempt
  // holds the lock across the helper's construction window).
  bool saw_contention = false;
  for (int attempt = 0; attempt < 50 && !saw_contention; ++attempt) {
    Mutex mu;
    std::atomic<bool> helper_contended{false};
    mu.lock();
    std::thread helper([&] {
      bool contended = false;
      const MutexLock lock(mu, contended);
      helper_contended.store(contended);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    mu.unlock();
    helper.join();
    saw_contention = helper_contended.load();
  }
  EXPECT_TRUE(saw_contention);
}

TEST(CondVarTest, InlineWaitLoopObservesPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    const MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> awake{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.wait(mu);
      awake.fetch_add(1);
    });
  }
  {
    const MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake.load(), 3);
}

TEST(SharedMutexTest, ReadersShare) {
  SharedMutex smu;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    const ReadLock lock(smu);
    reader_in.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();
  {
    // A second reader must enter while the first still holds its lock;
    // if ReadLock were exclusive this would deadlock (and time out).
    const ReadLock lock(smu);
  }
  release.store(true);
  reader.join();
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  SharedMutex smu;
  int value = 0;
  std::thread reader;
  {
    const WriteLock lock(smu);
    reader = std::thread([&] {
      const ReadLock rlock(smu);
      // The reader cannot enter until the writer released, so it must
      // observe the completed write, never the intermediate state.
      EXPECT_EQ(value, 42);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    value = 42;
  }
  reader.join();
}

}  // namespace
}  // namespace neuropuls::common
