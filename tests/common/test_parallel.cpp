// Tests for the thread pool and the determinism contract of the batch
// evaluation engine built on it: serial and parallel execution must be
// bit-identical at any thread count (noise seeds are keyed by work-item
// index, metric reductions run in a fixed order).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "metrics/population.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/population.hpp"

namespace neuropuls {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  common::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleItemRunsOnCaller) {
  common::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, OneThreadPoolIsSerial) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: serial by construction
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  common::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a cancelled loop and run the next one fully.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionCancelsRemainingIndices) {
  common::ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(100000, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("cancel");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cancel");
  }
  // Index 0 threw in the very first chunk; the cursor must have stopped
  // handing out work long before the end of the range.
  EXPECT_LT(executed.load(), 100000 - 1);
}

TEST(ThreadPool, ExceptionRethrownOnSubmittingThread) {
  common::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool caught_on_caller = false;
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i % 2 == 1) throw std::invalid_argument("odd index");
    });
  } catch (const std::invalid_argument&) {
    caught_on_caller = (std::this_thread::get_id() == caller);
  }
  EXPECT_TRUE(caught_on_caller);
}

TEST(ThreadPool, PoolReusableAcrossRepeatedThrows) {
  common::ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.parallel_for(50,
                                   [](std::size_t i) {
                                     if (i == 10) {
                                       throw std::runtime_error("again");
                                     }
                                   }),
                 std::runtime_error)
        << "round " << round;
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedLoopExceptionPropagatesThroughBothLevels) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t outer) {
                                   pool.parallel_for(8, [&](std::size_t inner) {
                                     if (outer == 3 && inner == 5) {
                                       throw std::domain_error("nested");
                                     }
                                   });
                                 }),
               std::domain_error);
  std::atomic<int> count{0};
  pool.parallel_for(32, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(8 * 8);
  pool.parallel_for(8, [&](std::size_t outer) {
    const std::thread::id worker = std::this_thread::get_id();
    pool.parallel_for(8, [&](std::size_t inner) {
      // Nested loops stay on the submitting worker — no deadlock, no
      // cross-thread interleaving inside one outer item.
      EXPECT_EQ(std::this_thread::get_id(), worker);
      inner_hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& h : inner_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(common::ThreadPool::default_thread_count(), 1u);
}

// --- determinism contract of the batch engine ---------------------------

std::vector<puf::Challenge> test_challenges(std::size_t count,
                                            std::size_t bytes) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("parallel-test"));
  std::vector<puf::Challenge> challenges;
  for (std::size_t i = 0; i < count; ++i) challenges.push_back(rng.generate(bytes));
  return challenges;
}

TEST(BatchDeterminism, NoisyBatchMatchesSerialEvaluate) {
  const auto cfg = puf::small_photonic_config();
  const auto challenges = test_challenges(24, 2);

  // Twin devices: same wafer seed + index -> identical fabrication and
  // noise-seed sequence. One answers serially, one in a batch.
  puf::PhotonicPuf serial_device(cfg, 77, 5);
  puf::PhotonicPuf batch_device(cfg, 77, 5);
  std::vector<puf::Response> serial;
  for (const auto& c : challenges) serial.push_back(serial_device.evaluate(c));

  common::ThreadPool pool(4);
  EXPECT_EQ(batch_device.evaluate_batch(challenges, &pool), serial);
}

TEST(BatchDeterminism, BatchIdenticalAcrossThreadCounts) {
  const auto cfg = puf::small_photonic_config();
  const auto challenges = test_challenges(24, 2);
  puf::PhotonicPuf one_device(cfg, 78, 2);
  puf::PhotonicPuf four_device(cfg, 78, 2);
  common::ThreadPool one(1);
  common::ThreadPool four(4);
  EXPECT_EQ(one_device.evaluate_batch(challenges, &one),
            four_device.evaluate_batch(challenges, &four));
  EXPECT_EQ(one_device.evaluate_noiseless_batch(challenges, &one),
            four_device.evaluate_noiseless_batch(challenges, &four));
}

TEST(BatchDeterminism, CounterContinuesAcrossCalls) {
  // evaluate() after a batch must see the counter advanced by the batch
  // size, exactly as if the batch had been a serial loop.
  const auto cfg = puf::small_photonic_config();
  const auto challenges = test_challenges(7, 2);
  puf::PhotonicPuf serial_device(cfg, 79, 0);
  puf::PhotonicPuf batch_device(cfg, 79, 0);
  for (const auto& c : challenges) serial_device.evaluate(c);
  batch_device.evaluate_batch(challenges);
  EXPECT_EQ(serial_device.evaluate(challenges.front()),
            batch_device.evaluate(challenges.front()));
}

TEST(BatchDeterminism, PopulationMatchesPerDeviceLoops) {
  auto cfg = puf::small_photonic_config();
  constexpr std::size_t kDevices = 5;
  const puf::Challenge challenge(2, 0xA5);

  common::ThreadPool pool(4);
  puf::PufPopulation population(cfg, 4242, kDevices, &pool);
  const auto refs = population.evaluate_noiseless_all(challenge);
  const auto rereads = population.evaluate_repeats(challenge, 3);

  for (std::size_t d = 0; d < kDevices; ++d) {
    puf::PhotonicPuf device(cfg, 4242, d);
    EXPECT_EQ(refs[d], device.evaluate_noiseless(challenge));
    ASSERT_EQ(rereads[d].size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(rereads[d][r], device.evaluate(challenge));
    }
  }
}

TEST(BatchDeterminism, UniquenessIdenticalAcrossThreadCounts) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("uniq-test"));
  std::vector<crypto::Bytes> responses;
  for (int d = 0; d < 33; ++d) responses.push_back(rng.generate(16));
  common::ThreadPool one(1);
  common::ThreadPool four(4);
  const double serial = metrics::uniqueness(responses, &one);
  const double parallel = metrics::uniqueness(responses, &four);
  EXPECT_EQ(serial, parallel);  // bit-identical, not just approximately
}

// ---- Reactor primitives: StealDeque ---------------------------------------

TEST(StealDeque, OwnerPopsLifoThievesStealFifo) {
  common::StealDeque dq(8);
  int items[4] = {0, 1, 2, 3};
  for (int& item : items) ASSERT_TRUE(dq.push(&item));
  EXPECT_EQ(dq.size(), 4u);
  // Thief takes the oldest (FIFO top)...
  EXPECT_EQ(dq.steal(), &items[0]);
  // ...owner takes the newest (LIFO bottom).
  EXPECT_EQ(dq.pop(), &items[3]);
  EXPECT_EQ(dq.steal(), &items[1]);
  EXPECT_EQ(dq.pop(), &items[2]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(StealDeque, RejectsPushBeyondFixedCapacity) {
  common::StealDeque dq(2);
  int a = 0, b = 0, c = 0;
  EXPECT_TRUE(dq.push(&a));
  EXPECT_TRUE(dq.push(&b));
  EXPECT_FALSE(dq.push(&c));  // full: fixed capacity never reallocates
  EXPECT_EQ(dq.pop(), &b);
  EXPECT_TRUE(dq.push(&c));  // slot freed
}

TEST(StealDeque, RingWrapsCleanlyUnderChurn) {
  common::StealDeque dq(3);
  int items[64];
  // Push/steal churn forces top_/bottom_ far past the ring size; every
  // item must still come out exactly once and in FIFO steal order.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(dq.push(&items[i]));
    EXPECT_EQ(dq.steal(), &items[i]);
  }
  EXPECT_EQ(dq.size(), 0u);
}

TEST(StealDeque, ConcurrentOwnerAndThievesLoseNothing) {
  constexpr std::size_t kItems = 10000;
  common::StealDeque dq(kItems);
  std::vector<int> items(kItems);
  std::atomic<std::size_t> taken{0};
  std::vector<std::atomic<int>> seen(kItems);

  std::thread owner([&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(dq.push(&items[i]));
      if (i % 3 == 0) {
        if (void* p = dq.pop()) {
          seen[static_cast<int*>(p) - items.data()].fetch_add(1);
          taken.fetch_add(1);
        }
      }
    }
    while (void* p = dq.pop()) {
      seen[static_cast<int*>(p) - items.data()].fetch_add(1);
      taken.fetch_add(1);
    }
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (taken.load() < kItems) {
        if (void* p = dq.steal()) {
          seen[static_cast<int*>(p) - items.data()].fetch_add(1);
          taken.fetch_add(1);
        }
      }
    });
  }
  owner.join();
  for (auto& thief : thieves) thief.join();
  EXPECT_EQ(taken.load(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// ---- Reactor primitives: ParkingLot ---------------------------------------

TEST(ParkingLot, BankedTokenPreventsLostWakeup) {
  common::ParkingLot lot(4);
  // Publish-then-park: the unpark arrives *before* the park (the classic
  // lost-wakeup interleaving) — the banked token makes park return
  // immediately instead of sleeping forever.
  lot.unpark_one();
  EXPECT_FALSE(lot.park());  // false: consumed a token, did not sleep
}

TEST(ParkingLot, TokensAreCappedAtMaxTokens) {
  common::ParkingLot lot(2);
  for (int i = 0; i < 10; ++i) lot.unpark_one();
  EXPECT_FALSE(lot.park());
  EXPECT_FALSE(lot.park());
  // Only two tokens were banked; a third park would sleep. Verify via a
  // real sleeper woken by unpark_one.
  std::thread sleeper([&] { EXPECT_TRUE(lot.park()); });
  // Give the sleeper time to actually block, then wake it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lot.unpark_one();
  sleeper.join();
}

TEST(ParkingLot, CloseReleasesAllSleepersForever) {
  common::ParkingLot lot(8);
  std::atomic<int> woken{0};
  std::vector<std::thread> sleepers;
  for (int t = 0; t < 4; ++t) {
    sleepers.emplace_back([&] {
      lot.park();
      woken.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lot.close();
  for (auto& sleeper : sleepers) sleeper.join();
  EXPECT_EQ(woken.load(), 4);
  EXPECT_TRUE(lot.closed());
  EXPECT_FALSE(lot.park());  // closed lot never sleeps again
}

}  // namespace
}  // namespace neuropuls
