// The POSIX io layer under the durable CRP store (ctest label: io):
// append semantics, whole-file round trips, atomic publish, directory
// listing, and TempDir cleanup. The WAL-specific decode behaviour is
// covered by tests/puf and tests/chaos; this file pins the syscalls
// wrappers those suites stand on.
#include <gtest/gtest.h>

#include <string>
#include <system_error>
#include <vector>

#include "common/io.hpp"

namespace neuropuls::common::io {
namespace {

crypto::Bytes bytes_of(const std::string& text) {
  return crypto::Bytes(text.begin(), text.end());
}

TEST(Io, AppendAccumulatesAndReadsBack) {
  const TempDir dir("np-io-test");
  const std::string path = dir.path() + "/log";
  {
    File file = File::open_append(path);
    EXPECT_TRUE(file.valid());
    file.write_all(bytes_of("hello "));
    file.write_all(bytes_of("world"));
    file.sync();
    EXPECT_EQ(file.size(), 11u);
  }
  {
    // A second open_append continues at end of file.
    File file = File::open_append(path);
    file.write_all(bytes_of("!"));
  }
  EXPECT_EQ(read_file(path), bytes_of("hello world!"));
}

TEST(Io, ReadExactAtOffset) {
  const TempDir dir("np-io-test");
  const std::string path = dir.path() + "/blob";
  {
    File file = File::create_truncate(path);
    file.write_all(bytes_of("0123456789"));
  }
  const File file = File::open_read(path);
  std::vector<std::uint8_t> out(4);
  file.read_exact(3, out);
  EXPECT_EQ(crypto::Bytes(out.begin(), out.end()), bytes_of("3456"));
  // Reading past end of file is a short read — must throw, not zero-fill.
  std::vector<std::uint8_t> tail(4);
  EXPECT_THROW(file.read_exact(8, tail), std::system_error);
}

TEST(Io, OpenReadMissingFileThrows) {
  const TempDir dir("np-io-test");
  EXPECT_THROW(File::open_read(dir.path() + "/absent"), std::system_error);
  EXPECT_FALSE(file_exists(dir.path() + "/absent"));
}

TEST(Io, CreateTruncateDiscardsPreviousContents) {
  const TempDir dir("np-io-test");
  const std::string path = dir.path() + "/file";
  { File::create_truncate(path).write_all(bytes_of("long old contents")); }
  { File::create_truncate(path).write_all(bytes_of("new")); }
  EXPECT_EQ(read_file(path), bytes_of("new"));
}

TEST(Io, AtomicWriteReplacesAndLeavesNoTemp) {
  const TempDir dir("np-io-test");
  const std::string path = dir.path() + "/manifest";
  atomic_write_file(path, bytes_of("generation 1"));
  atomic_write_file(path, bytes_of("generation 2"));
  EXPECT_EQ(read_file(path), bytes_of("generation 2"));
  const std::vector<std::string> files = list_files(dir.path());
  ASSERT_EQ(files.size(), 1u) << "the .tmp staging file must not survive";
  EXPECT_EQ(files[0], "manifest");
}

TEST(Io, ListFilesIsSortedAndSkipsDirectories) {
  const TempDir dir("np-io-test");
  atomic_write_file(dir.path() + "/b", bytes_of("b"));
  atomic_write_file(dir.path() + "/a", bytes_of("a"));
  create_directories(dir.path() + "/subdir");
  const std::vector<std::string> files = list_files(dir.path());
  EXPECT_EQ(files, (std::vector<std::string>{"a", "b"}));
}

TEST(Io, CreateDirectoriesIsIdempotentAndDeep) {
  const TempDir dir("np-io-test");
  const std::string deep = dir.path() + "/x/y/z";
  create_directories(deep);
  create_directories(deep);  // EEXIST on a directory is success
  atomic_write_file(deep + "/file", bytes_of("ok"));
  EXPECT_TRUE(file_exists(deep + "/file"));
}

TEST(Io, RemoveFileIsIdempotent) {
  const TempDir dir("np-io-test");
  const std::string path = dir.path() + "/victim";
  atomic_write_file(path, bytes_of("x"));
  remove_file(path);
  EXPECT_FALSE(file_exists(path));
  remove_file(path);  // second removal of a missing file is a no-op
}

TEST(Io, TempDirRemovesItselfRecursively) {
  std::string kept;
  {
    const TempDir dir("np-io-test");
    kept = dir.path();
    create_directories(kept + "/nested");
    atomic_write_file(kept + "/nested/file", bytes_of("data"));
  }
  EXPECT_FALSE(file_exists(kept + "/nested/file"));
}

}  // namespace
}  // namespace neuropuls::common::io
