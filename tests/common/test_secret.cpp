// SecretBytes taint-type tests: the compile-time guarantees (deleted
// copies and equality), the wipe path, move semantics, and the sanctioned
// ct_equal comparison surface.
#include <gtest/gtest.h>

#include <concepts>
#include <type_traits>

#include "common/secret.hpp"

namespace neuropuls::common {
namespace {

// ---- Compile-error proofs ------------------------------------------------------
// The tentpole guarantee: misuse of a secret is a compile error, not a
// code-review finding. These static_asserts ARE the negative-compile
// tests — if someone re-adds `operator==` or an implicit copy, this
// translation unit stops building.
static_assert(!std::equality_comparable<SecretBytes>,
              "SecretBytes must not be ==-comparable (timing oracle)");
static_assert(!std::is_copy_constructible_v<SecretBytes>,
              "secret copies must be explicit via clone()");
static_assert(!std::is_copy_assignable_v<SecretBytes>,
              "secret copies must be explicit via clone()");
static_assert(std::is_nothrow_move_constructible_v<SecretBytes>);
static_assert(std::is_nothrow_move_assignable_v<SecretBytes>);
static_assert(!std::is_convertible_v<crypto::Bytes, SecretBytes>,
              "plain buffers must not silently become secrets");

TEST(SecretBytes, AdoptingConstructorTakesOwnership) {
  crypto::Bytes data = {1, 2, 3, 4};
  SecretBytes secret(std::move(data));
  EXPECT_EQ(secret.size(), 4u);
  EXPECT_FALSE(secret.empty());
  EXPECT_TRUE(data.empty());  // no second copy left behind
  EXPECT_EQ(secret.reveal()[2], 3u);
}

TEST(SecretBytes, WipeZeroizesTheBufferBeforeReleasingIt) {
  // Move a buffer in, keep a pointer to the heap block, wipe, and check
  // every byte was zeroised. clear() keeps the allocation, so the block
  // is still owned by the (now empty) vector when we inspect it.
  crypto::Bytes data(32, 0xAB);
  const std::uint8_t* block = data.data();
  SecretBytes secret(std::move(data));
  ASSERT_EQ(secret.reveal().data(), block);  // same heap block moved in

  secret.wipe();
  EXPECT_TRUE(secret.empty());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(block[i], 0u) << "residue at offset " << i;
  }
  // The destructor runs the same wipe; double-wiping must be safe.
  secret.wipe();
}

TEST(SecretBytes, MoveConstructionEmptiesTheSource) {
  SecretBytes a(crypto::Bytes{9, 9, 9});
  SecretBytes b(std::move(a));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(b.size(), 3u);
}

TEST(SecretBytes, MoveAssignmentTransfersAndEmptiesSource) {
  SecretBytes a(crypto::Bytes{1, 2});
  SecretBytes b(crypto::Bytes{7, 7, 7, 7});
  b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.reveal()[1], 2u);
}

TEST(SecretBytes, CloneIsAnIndependentCopy) {
  SecretBytes original(crypto::Bytes{5, 6, 7});
  SecretBytes copy = original.clone();
  EXPECT_TRUE(ct_equal(original, copy));
  original.wipe();
  EXPECT_TRUE(original.empty());
  EXPECT_EQ(copy.size(), 3u);  // survives the source's wipe
  EXPECT_EQ(copy.reveal()[0], 5u);
}

TEST(SecretBytes, CopyOfDuplicatesAView) {
  const crypto::Bytes wire = {0x10, 0x20, 0x30, 0x40};
  SecretBytes secret =
      SecretBytes::copy_of(crypto::ByteView(wire).subspan(1, 2));
  EXPECT_EQ(secret.size(), 2u);
  EXPECT_EQ(secret.reveal()[0], 0x20u);
}

TEST(SecretBytes, CtEqualOverloads) {
  SecretBytes a(crypto::Bytes{1, 2, 3});
  SecretBytes same(crypto::Bytes{1, 2, 3});
  SecretBytes different(crypto::Bytes{1, 2, 4});
  const crypto::Bytes plain = {1, 2, 3};

  EXPECT_TRUE(ct_equal(a, same));
  EXPECT_FALSE(ct_equal(a, different));
  EXPECT_TRUE(ct_equal(a, crypto::ByteView(plain)));
  EXPECT_TRUE(ct_equal(crypto::ByteView(plain), a));
  EXPECT_FALSE(ct_equal(a, SecretBytes(crypto::Bytes{1, 2})));  // length
  EXPECT_TRUE(ct_equal(SecretBytes(), SecretBytes()));  // empty == empty
}

TEST(SecretBytes, DefaultConstructedIsEmpty) {
  SecretBytes secret;
  EXPECT_TRUE(secret.empty());
  EXPECT_EQ(secret.size(), 0u);
  EXPECT_TRUE(secret.reveal().empty());
  secret.wipe();  // wiping an empty secret is a no-op, not a crash
}

}  // namespace
}  // namespace neuropuls::common
