// Fault-injection subsystem unit tests: the DeviceFaultModel oracle, the
// ADC stuck-bit hook, the PhotonicPuf fault path (including quiet-model
// bit-identity and batch/serial identity), CRP health/quarantine, and the
// FaultyChannel transport adversary (rates, delay/reorder mechanics, and
// the seed-determinism contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "crypto/bytes.hpp"
#include "faults/device_faults.hpp"
#include "faults/faulty_channel.hpp"
#include "net/channel.hpp"
#include "photonic/detector.hpp"
#include "puf/crp_db.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls {
namespace {

using faults::ChannelFaultConfig;
using faults::DeviceFaultConfig;
using faults::DeviceFaultModel;
using faults::FaultyChannel;
using faults::LinkFaultRates;
using net::Direction;
using net::DuplexChannel;
using net::Message;
using net::MessageType;

// ---------------------------------------------------------------- device

TEST(DeviceFaultModel, QuietByDefaultAndIdentity) {
  const DeviceFaultModel model(DeviceFaultConfig{}, 7);
  EXPECT_TRUE(model.quiet());
  EXPECT_DOUBLE_EQ(model.photodiode_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(model.laser_scale(1000), 1.0);
  EXPECT_DOUBLE_EQ(model.temperature_offset(1000), 0.0);
  EXPECT_DOUBLE_EQ(model.phase_drift(1000, 3), 0.0);
  EXPECT_EQ(model.apply_adc(0x2A5u), 0x2A5u);
}

TEST(DeviceFaultModel, PhotodiodeScaleTargetsOnePort) {
  DeviceFaultConfig config;
  config.photodiodes.push_back({/*port=*/1, /*responsivity_scale=*/0.25});
  const DeviceFaultModel model(config, 7);
  EXPECT_FALSE(model.quiet());
  EXPECT_DOUBLE_EQ(model.photodiode_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(model.photodiode_scale(1), 0.25);
}

TEST(DeviceFaultModel, LaserDroopIsMonotoneWithFloor) {
  DeviceFaultConfig config;
  config.laser_droop = {/*droop_per_eval=*/0.01, /*floor_scale=*/0.7};
  const DeviceFaultModel model(config, 7);
  EXPECT_DOUBLE_EQ(model.laser_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(model.laser_scale(10), 0.9);
  EXPECT_DOUBLE_EQ(model.laser_scale(1000), 0.7);  // clamped at the floor
  double prev = 1.0;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    const double s = model.laser_scale(i);
    EXPECT_LE(s, prev);
    prev = s;
  }
}

TEST(DeviceFaultModel, ThermalSpikesMatchProbabilityAndSeed) {
  DeviceFaultConfig config;
  config.thermal = {/*spike_probability=*/0.2, /*magnitude_kelvin=*/5.0};
  const DeviceFaultModel model(config, 7);
  const DeviceFaultModel same(config, 7);
  const DeviceFaultModel other(config, 8);
  int spikes = 0;
  int diverged = 0;
  constexpr int kEvals = 2000;
  for (int i = 0; i < kEvals; ++i) {
    const double offset = model.temperature_offset(i);
    EXPECT_TRUE(offset == 0.0 || offset == 5.0);
    // Pure function of (seed, index): repeated queries agree.
    EXPECT_DOUBLE_EQ(same.temperature_offset(i), offset);
    if (offset != 0.0) ++spikes;
    if (other.temperature_offset(i) != offset) ++diverged;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / kEvals, 0.2, 0.04);
  EXPECT_GT(diverged, 0);  // different seed, different schedule
}

TEST(DeviceFaultModel, PhaseDriftGrowsAndSaturates) {
  DeviceFaultConfig config;
  config.phase_aging = {/*drift_rad_per_eval=*/1e-3, /*max_drift_rad=*/0.1};
  const DeviceFaultModel model(config, 7);
  for (std::size_t port = 0; port < 4; ++port) {
    EXPECT_DOUBLE_EQ(model.phase_drift(0, port), 0.0);
    const double early = std::abs(model.phase_drift(10, port));
    const double late = std::abs(model.phase_drift(1000, port));
    EXPECT_LE(early, late + 1e-12);
    EXPECT_LE(late, 0.1);
  }
  // Ports age independently (seeded direction/magnitude factors differ).
  EXPECT_NE(model.phase_drift(1000, 0), model.phase_drift(1000, 1));
}

TEST(AdcStuckBits, MasksApplyInsideCodeRange) {
  photonic::Adc adc(photonic::AdcParameters{8, 1.0, 0.0});
  const std::uint32_t healthy = adc.quantize(0.5);
  adc.set_stuck_bits(/*or_mask=*/0x01, /*and_mask=*/~0x80u);
  const std::uint32_t faulty = adc.quantize(0.5);
  EXPECT_EQ(faulty, ((healthy | 0x01u) & ~0x80u) & adc.max_code());
  EXPECT_EQ(faulty & 0x01u, 0x01u);
  EXPECT_EQ(faulty & 0x80u, 0u);
  // Saturated input still saturates within the masked range.
  EXPECT_EQ(adc.quantize(10.0), (adc.max_code() & ~0x80u) | 0x01u);
  // Identity masks restore exact pre-fault behaviour.
  adc.set_stuck_bits(0, 0xFFFFFFFFu);
  EXPECT_EQ(adc.quantize(0.5), healthy);
}

TEST(AdcStuckBits, ReadoutChainForwards) {
  photonic::ReadoutChain chain(photonic::PhotodiodeParameters{},
                               photonic::TiaParameters{},
                               photonic::AdcParameters{8, 1.0, 0.0},
                               25e9, /*seed=*/3);
  const std::vector<photonic::Complex> fields(16, photonic::Complex{0.5, 0.2});
  photonic::ReadoutChain stuck(photonic::PhotodiodeParameters{},
                               photonic::TiaParameters{},
                               photonic::AdcParameters{8, 1.0, 0.0},
                               25e9, /*seed=*/3);
  stuck.set_adc_stuck_bits(0xFF, 0xFF);  // low byte forced to all-ones
  const auto healthy = chain.integrate(fields);
  const auto faulty = stuck.integrate(fields);
  // Identical seeds -> identical analog chain; only the code differs.
  EXPECT_DOUBLE_EQ(faulty.mean_volts, healthy.mean_volts);
  EXPECT_EQ(faulty.code, 0xFFu);
}

// ------------------------------------------------------------- puf hooks

puf::PhotonicPuf make_puf() {
  return puf::PhotonicPuf(puf::small_photonic_config(), /*wafer_seed=*/2024,
                          /*device_index=*/0);
}

puf::Challenge make_challenge(std::uint64_t i, std::size_t bytes) {
  crypto::Bytes c(bytes, 0);
  for (std::size_t k = 0; k < bytes; ++k) {
    c[k] = static_cast<std::uint8_t>((i >> (8 * (k % 8))) ^ (0x5A + k));
  }
  return c;
}

TEST(PhotonicPufFaults, QuietModelIsBitIdentical) {
  auto healthy = make_puf();
  auto with_quiet = make_puf();
  with_quiet.set_fault_model(
      std::make_shared<const DeviceFaultModel>(DeviceFaultConfig{}, 99));
  for (int i = 0; i < 8; ++i) {
    const auto c = make_challenge(i, healthy.challenge_bytes());
    EXPECT_EQ(healthy.evaluate(c), with_quiet.evaluate(c)) << i;
  }
}

TEST(PhotonicPufFaults, NoiselessModelNeverSeesFaults) {
  auto healthy = make_puf();
  auto faulted = make_puf();
  DeviceFaultConfig config;
  config.photodiodes.push_back({0, 0.0});  // dead photodiode on port 0
  config.thermal = {1.0, 10.0};
  faulted.set_fault_model(std::make_shared<const DeviceFaultModel>(config, 5));
  for (int i = 0; i < 4; ++i) {
    const auto c = make_challenge(i, healthy.challenge_bytes());
    EXPECT_EQ(healthy.evaluate_noiseless(c), faulted.evaluate_noiseless(c));
  }
}

TEST(PhotonicPufFaults, DeadPhotodiodeCorruptsResponses) {
  auto healthy = make_puf();
  auto faulted = make_puf();
  DeviceFaultConfig config;
  config.photodiodes.push_back({0, 0.0});
  faulted.set_fault_model(std::make_shared<const DeviceFaultModel>(config, 5));
  // Same device seed, same counter sequence: any divergence is the fault.
  int diverged = 0;
  for (int i = 0; i < 8; ++i) {
    const auto c = make_challenge(i, healthy.challenge_bytes());
    if (healthy.evaluate(c) != faulted.evaluate(c)) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(PhotonicPufFaults, BatchMatchesSerialUnderFaults) {
  DeviceFaultConfig config;
  config.thermal = {0.3, 3.0};
  config.laser_droop = {1e-3, 0.8};
  config.phase_aging = {1e-4, 0.2};
  const auto model = std::make_shared<const DeviceFaultModel>(config, 11);

  auto serial = make_puf();
  serial.set_fault_model(model);
  auto batched = make_puf();
  batched.set_fault_model(model);

  std::vector<puf::Challenge> challenges;
  for (int i = 0; i < 12; ++i) {
    challenges.push_back(make_challenge(i, serial.challenge_bytes()));
  }
  std::vector<puf::Response> expected;
  for (const auto& c : challenges) expected.push_back(serial.evaluate(c));
  const auto got = batched.evaluate_batch(challenges);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "item " << i;
  }
}

TEST(PhotonicPufFaults, EvaluateRobustReducesThermalFaultErrors) {
  DeviceFaultConfig config;
  config.thermal = {/*spike_probability=*/0.3, /*magnitude_kelvin=*/2.0};
  const auto model = std::make_shared<const DeviceFaultModel>(config, 13);

  auto puf = make_puf();
  const auto c = make_challenge(1, puf.challenge_bytes());
  const auto reference = puf.evaluate_noiseless(c);
  puf.set_fault_model(model);

  // Average per-read error vs the model reference, single reads...
  double single_err = 0.0;
  constexpr int kReads = 15;
  for (int i = 0; i < kReads; ++i) {
    single_err +=
        crypto::fractional_hamming_distance(puf.evaluate(c), reference);
  }
  single_err /= kReads;
  // ...vs 5-of-n majority re-measurement. Majority voting averages the
  // transient spikes out, so it can only do as well or better.
  double robust_err = 0.0;
  constexpr int kRobustReads = 3;
  for (int i = 0; i < kRobustReads; ++i) {
    robust_err += crypto::fractional_hamming_distance(
        puf.evaluate_robust(c, 5), reference);
  }
  robust_err /= kRobustReads;
  EXPECT_LE(robust_err, single_err + 1e-9);
}

// ------------------------------------------------------------ crp health

puf::Crp synthetic_crp(std::uint8_t tag) {
  return puf::Crp{crypto::Bytes(8, tag), crypto::Bytes(16, tag)};
}

TEST(CrpHealth, FailuresQuarantineAtThreshold) {
  puf::CrpDatabase db;
  db.set_quarantine_threshold(3);
  db.insert(synthetic_crp(1));
  const auto challenge = crypto::Bytes(8, 1);

  db.record_failure(challenge);
  db.record_failure(challenge);
  EXPECT_FALSE(db.health(challenge)->quarantined);
  EXPECT_TRUE(db.lookup(challenge).has_value());

  db.record_failure(challenge);
  const auto health = db.health(challenge);
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->quarantined);
  EXPECT_EQ(health->failures, 3u);
  EXPECT_EQ(db.quarantined(), 1u);
  // Quarantined CRPs are never served.
  EXPECT_FALSE(db.lookup(challenge).has_value());
  EXPECT_FALSE(db.take().has_value());
}

TEST(CrpHealth, SuccessResetsConsecutiveRun) {
  puf::CrpDatabase db;
  db.set_quarantine_threshold(3);
  db.insert(synthetic_crp(1));
  const auto challenge = crypto::Bytes(8, 1);
  db.record_failure(challenge);
  db.record_failure(challenge);
  db.record_success(challenge);
  db.record_failure(challenge);
  db.record_failure(challenge);
  const auto health = db.health(challenge);
  EXPECT_FALSE(health->quarantined);
  EXPECT_EQ(health->successes, 1u);
  EXPECT_EQ(health->failures, 4u);
  EXPECT_EQ(health->consecutive_failures, 2u);
}

TEST(CrpHealth, TakeSkipsQuarantinedAndEvictionRemoves) {
  puf::CrpDatabase db;
  db.set_quarantine_threshold(1);
  db.insert(synthetic_crp(1));
  db.insert(synthetic_crp(2));
  db.insert(synthetic_crp(3));
  db.record_failure(crypto::Bytes(8, 3));  // quarantine the back entry

  const auto taken = db.take();
  ASSERT_TRUE(taken.has_value());
  EXPECT_NE(taken->challenge, crypto::Bytes(8, 3));
  EXPECT_EQ(db.size(), 2u);

  EXPECT_EQ(db.evict_quarantined(), 1u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.quarantined(), 0u);
  // Index stays consistent after swap-removals.
  const auto remaining = db.take();
  ASSERT_TRUE(remaining.has_value());
  EXPECT_TRUE(db.empty());
}

// Regression: take() must erase the consumed challenge from the index
// *before* moving the CRP out. Erasing afterwards probed the map with a
// moved-from (empty) key, stranding a stale index entry that pointed at a
// popped slot (out-of-bounds) or at whichever CRP got swap-compacted in
// (misattributed lookups/health counters).
TEST(CrpHealth, TakeRemovesConsumedChallengeFromIndex) {
  puf::CrpDatabase db;
  db.insert(synthetic_crp(1));
  db.insert(synthetic_crp(2));
  db.insert(synthetic_crp(3));

  const auto taken = db.take();
  ASSERT_TRUE(taken.has_value());
  // The consumed pair is gone from every index-backed accessor...
  EXPECT_FALSE(db.lookup(taken->challenge).has_value());
  EXPECT_FALSE(db.health(taken->challenge).has_value());
  // ...and outcomes recorded against it are dropped, not charged to the
  // entry now occupying the freed slot.
  db.record_failure(taken->challenge);
  db.record_failure(taken->challenge);
  db.record_failure(taken->challenge);
  EXPECT_EQ(db.quarantined(), 0u);
  EXPECT_EQ(db.health(crypto::Bytes(8, 1))->failures, 0u);
  EXPECT_EQ(db.health(crypto::Bytes(8, 2))->failures, 0u);
  // Survivors still resolve to their own responses through the index.
  EXPECT_EQ(db.lookup(crypto::Bytes(8, 1)), crypto::Bytes(16, 1));
  EXPECT_EQ(db.lookup(crypto::Bytes(8, 2)), crypto::Bytes(16, 2));
}

TEST(CrpHealth, TakePastQuarantineKeepsHealthCountersTargeted) {
  puf::CrpDatabase db;
  db.set_quarantine_threshold(1);
  db.insert(synthetic_crp(1));
  db.insert(synthetic_crp(2));
  db.record_failure(crypto::Bytes(8, 2));  // quarantine the back entry

  // take() skips the quarantined back entry, consumes entry 1, and
  // swap-compacts the quarantined entry into the freed slot.
  const auto taken = db.take();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->challenge, crypto::Bytes(8, 1));
  EXPECT_FALSE(db.health(taken->challenge).has_value());
  // A failure against the consumed challenge must not land on the
  // survivor that now lives in its old slot.
  db.record_failure(taken->challenge);
  const auto survivor = db.health(crypto::Bytes(8, 2));
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->failures, 1u);
  EXPECT_EQ(db.quarantined(), 1u);
}

// -------------------------------------------------------------- channel

Message frame(std::uint8_t tag, std::uint64_t sid = 1) {
  return Message{MessageType::kData, sid, crypto::Bytes(4, tag)};
}

TEST(ReceiveWithBudget, DistinguishesPendingFromDropped) {
  DuplexChannel channel;
  channel.send(Direction::kAtoB, frame(1));
  EXPECT_TRUE(channel.receive_with_budget(Direction::kAtoB, 0).has_value());
  // Nothing pending and no delayed frames: budget exhausts cleanly.
  EXPECT_FALSE(channel.receive_with_budget(Direction::kAtoB, 3).has_value());
}

TEST(FaultyChannel, ZeroRatesArePassThrough) {
  DuplexChannel channel;
  FaultyChannel faulty(channel, ChannelFaultConfig{}, 1);
  for (std::uint8_t i = 0; i < 10; ++i) {
    channel.send(Direction::kAtoB, frame(i));
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto m = channel.receive(Direction::kAtoB);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, crypto::Bytes(4, i));  // order preserved
  }
  EXPECT_EQ(faulty.stats(Direction::kAtoB).intercepted, 10u);
  EXPECT_EQ(faulty.stats(Direction::kAtoB).dropped, 0u);
}

TEST(FaultyChannel, DropRateIsRoughlyNominal) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.drop = 0.2;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 42);
  constexpr int kFrames = 2000;
  int delivered = 0;
  for (int i = 0; i < kFrames; ++i) {
    channel.send(Direction::kAtoB, frame(static_cast<std::uint8_t>(i)));
    if (channel.receive(Direction::kAtoB)) ++delivered;
  }
  const auto& stats = faulty.stats(Direction::kAtoB);
  EXPECT_EQ(stats.dropped, static_cast<std::uint64_t>(kFrames - delivered));
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kFrames, 0.2, 0.04);
}

TEST(FaultyChannel, CorruptionFlipsExactlyOneBit) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.corrupt = 1.0;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 7);
  const Message original = frame(0xAA);
  channel.send(Direction::kAtoB, original);
  const auto received = channel.receive(Direction::kAtoB);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, original.type);
  ASSERT_EQ(received->payload.size(), original.payload.size());
  int flipped = 0;
  for (std::size_t i = 0; i < original.payload.size(); ++i) {
    flipped += std::popcount(
        static_cast<unsigned>(original.payload[i] ^ received->payload[i]));
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(faulty.stats(Direction::kAtoB).corrupted, 1u);

  // Empty payloads corrupt the type field instead.
  channel.send(Direction::kBtoA, Message{MessageType::kData, 1, {}});
  const auto typed = channel.receive(Direction::kBtoA);
  ASSERT_TRUE(typed.has_value());
  EXPECT_NE(typed->type, MessageType::kData);
}

TEST(FaultyChannel, DuplicationDeliversTwoCopies) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.duplicate = 1.0;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 7);
  channel.send(Direction::kAtoB, frame(5));
  EXPECT_EQ(channel.pending(Direction::kAtoB), 2u);
  const auto first = channel.receive(Direction::kAtoB);
  const auto second = channel.receive(Direction::kAtoB);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(faulty.stats(Direction::kAtoB).duplicated, 1u);
}

TEST(FaultyChannel, DelayedFramesArriveWithinPollBudget) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.delay = 1.0;
  rates.max_delay_polls = 4;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 9);
  channel.send(Direction::kAtoB, frame(3));
  // Not pending yet — it is held, not dropped.
  EXPECT_EQ(channel.pending(Direction::kAtoB), 0u);
  EXPECT_EQ(faulty.held(), 1u);
  // A budget of max_delay_polls always outwaits the delay.
  const auto m = channel.receive_with_budget(Direction::kAtoB, 5);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, crypto::Bytes(4, 3));
  EXPECT_EQ(faulty.held(), 0u);
  EXPECT_EQ(faulty.stats(Direction::kAtoB).delayed, 1u);
}

TEST(FaultyChannel, ReorderHoldsUntilNextSameDirectionSend) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.reorder = 1.0;
  ChannelFaultConfig config;
  config.a_to_b = rates;  // only the A->B direction reorders
  FaultyChannel faulty(channel, config, 9);

  channel.send(Direction::kAtoB, frame(1));  // held until the next send
  EXPECT_EQ(channel.pending(Direction::kAtoB), 0u);
  EXPECT_EQ(faulty.held(), 1u);
  // Polling does not release a reorder hold — it waits on a *send*.
  EXPECT_FALSE(channel.receive_with_budget(Direction::kAtoB, 3).has_value());
  // Traffic in the opposite direction does not arm it either.
  channel.send(Direction::kBtoA, frame(7));
  EXPECT_EQ(faulty.held(), 1u);
  // The next A->B send arms the hold; one poll later it is delivered.
  channel.send(Direction::kAtoB, frame(2));  // itself held (rate 1.0)
  const auto released = channel.receive_with_budget(Direction::kAtoB, 1);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->payload, crypto::Bytes(4, 1));
  EXPECT_EQ(faulty.stats(Direction::kAtoB).reordered, 2u);
}

TEST(FaultyChannel, ReorderPermutesButNeverLosesFrames) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.reorder = 0.3;
  ChannelFaultConfig config;
  config.a_to_b = rates;
  FaultyChannel faulty(channel, config, 17);

  std::vector<std::uint8_t> order;
  constexpr int kFrames = 60;
  for (int i = 0; i < kFrames; ++i) {
    channel.send(Direction::kAtoB, frame(static_cast<std::uint8_t>(i)));
    while (auto m = channel.receive_with_budget(Direction::kAtoB, 1)) {
      order.push_back(m->payload[0]);
    }
  }
  faulty.flush();
  while (auto m = channel.receive(Direction::kAtoB)) {
    order.push_back(m->payload[0]);
  }
  // Reordering is a permutation: every frame arrives exactly once...
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFrames));
  std::vector<std::uint8_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint8_t> expected(kFrames);
  std::iota(expected.begin(), expected.end(), std::uint8_t{0});
  EXPECT_EQ(sorted, expected);
  // ...and at this rate the arrival order has at least one inversion.
  EXPECT_GT(faulty.stats(Direction::kAtoB).reordered, 0u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(FaultyChannel, FlushDeliversHeldFrames) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.delay = 1.0;
  rates.max_delay_polls = 100;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 9);
  channel.send(Direction::kAtoB, frame(1));
  channel.send(Direction::kBtoA, frame(2));
  EXPECT_EQ(faulty.held(), 2u);
  faulty.flush();
  EXPECT_EQ(faulty.held(), 0u);
  EXPECT_TRUE(channel.receive(Direction::kAtoB).has_value());
  EXPECT_TRUE(channel.receive(Direction::kBtoA).has_value());
}

TEST(FaultyChannel, SameSeedSameFaultSchedule) {
  // The determinism contract at the channel level: identical seeds and
  // send/poll sequences produce byte-identical transcripts.
  LinkFaultRates rates;
  rates.drop = 0.1;
  rates.corrupt = 0.1;
  rates.duplicate = 0.1;
  rates.delay = 0.1;
  rates.reorder = 0.1;

  const auto run = [&rates](std::uint64_t seed) {
    DuplexChannel channel;
    FaultyChannel faulty(channel, faults::symmetric_faults(rates), seed);
    crypto::Bytes log;
    for (int i = 0; i < 300; ++i) {
      const auto dir = (i % 3 == 0) ? Direction::kBtoA : Direction::kAtoB;
      channel.send(dir, frame(static_cast<std::uint8_t>(i), i));
      if (auto m = channel.receive_with_budget(dir, 2)) {
        const auto wire = net::encode_message(*m);
        log.insert(log.end(), wire.begin(), wire.end());
      }
    }
    faulty.flush();
    return log;
  };

  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

TEST(FaultyChannel, DetachesOnDestruction) {
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.drop = 1.0;
  {
    FaultyChannel faulty(channel, faults::symmetric_faults(rates), 1);
    channel.send(Direction::kAtoB, frame(1));
    EXPECT_FALSE(channel.receive(Direction::kAtoB).has_value());
  }
  channel.send(Direction::kAtoB, frame(2));
  EXPECT_TRUE(channel.receive(Direction::kAtoB).has_value());
}

}  // namespace
}  // namespace neuropuls
