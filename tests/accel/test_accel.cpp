// Accelerator tests: network serialization, both MVM engines, and the
// Table I secure API (round trip + plaintext-never-exposed properties).
#include <gtest/gtest.h>

#include <cmath>

#include "accel/secure_api.hpp"

namespace neuropuls::accel {
namespace {

MlpNetwork tiny_network() {
  MlpNetwork network;
  Layer layer;
  layer.inputs = 2;
  layer.outputs = 2;
  layer.weights = {1.0, 0.0, 0.0, 1.0};  // identity
  layer.biases = {0.5, -0.5};
  layer.activation = Activation::kLinear;
  network.layers.push_back(layer);
  return network;
}

TEST(Network, ValidationCatchesBrokenShapes) {
  MlpNetwork network = tiny_network();
  EXPECT_NO_THROW(network.validate());
  network.layers[0].weights.pop_back();
  EXPECT_THROW(network.validate(), std::invalid_argument);
  MlpNetwork empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);
  MlpNetwork chained = tiny_network();
  Layer second = chained.layers[0];
  second.inputs = 3;
  second.weights.assign(6, 0.0);
  chained.layers.push_back(second);
  EXPECT_THROW(chained.validate(), std::invalid_argument);
}

TEST(Network, SerializationRoundTrip) {
  const MlpNetwork network = make_random_network({4, 8, 3}, 17);
  const auto blob = serialize_network(network);
  const MlpNetwork parsed = deserialize_network(blob);
  ASSERT_EQ(parsed.layers.size(), network.layers.size());
  for (std::size_t l = 0; l < network.layers.size(); ++l) {
    EXPECT_EQ(parsed.layers[l].weights, network.layers[l].weights);
    EXPECT_EQ(parsed.layers[l].biases, network.layers[l].biases);
    EXPECT_EQ(parsed.layers[l].activation, network.layers[l].activation);
  }
  EXPECT_EQ(parsed.parameter_count(), network.parameter_count());
}

TEST(Network, DeserializeRejectsGarbage) {
  EXPECT_THROW(deserialize_network(crypto::Bytes(3, 0)), std::runtime_error);
  auto blob = serialize_network(tiny_network());
  blob.push_back(0);  // trailing byte
  EXPECT_THROW(deserialize_network(blob), std::runtime_error);
  auto wrong_version = serialize_network(tiny_network());
  wrong_version[3] = 9;
  EXPECT_THROW(deserialize_network(wrong_version), std::runtime_error);
}

TEST(Network, VectorRoundTrip) {
  const std::vector<double> v = {1.5, -2.25, 0.0, 1e-9, 3e12};
  EXPECT_EQ(deserialize_vector(serialize_vector(v)), v);
  EXPECT_TRUE(deserialize_vector(serialize_vector({})).empty());
}

TEST(Network, ActivationFunctions) {
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kLinear, -3.0), -3.0);
  EXPECT_NEAR(apply_activation(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(apply_activation(Activation::kTanh, 100.0), 1.0, 1e-9);
}

TEST(DigitalMvm, ExactIdentityForward) {
  Accelerator accel(std::make_unique<DigitalMvm>());
  accel.load(tiny_network());
  const auto y = accel.infer({2.0, 3.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 2.5);
  EXPECT_EQ(accel.stats().mac_operations, 4u);
  EXPECT_GT(accel.stats().energy_pj, 0.0);
}

TEST(DigitalMvm, ErrorsOnMisuse) {
  Accelerator accel(std::make_unique<DigitalMvm>());
  EXPECT_THROW(accel.infer({1.0}), std::logic_error);
  accel.load(tiny_network());
  EXPECT_THROW(accel.infer({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(Accelerator(nullptr), std::invalid_argument);
}

TEST(PhotonicMvm, QuantizationMatchesResolution) {
  PhotonicMvmConfig cfg;
  cfg.weight_bits = 4;
  cfg.weight_clip = 2.0;
  PhotonicMvm engine(cfg, 1);
  // 4 bits over [-2, 2]: step = 4/15.
  const double step = 4.0 / 15.0;
  const double q = engine.effective_weight(0.2);
  EXPECT_NEAR(std::fmod(q + 2.0, step), 0.0, 1e-9);
  EXPECT_NEAR(q, 0.2, step / 2.0 + 1e-12);
  // Clipping.
  EXPECT_DOUBLE_EQ(engine.effective_weight(10.0), 2.0);
  EXPECT_DOUBLE_EQ(engine.effective_weight(-10.0), -2.0);
}

TEST(PhotonicMvm, CloseToDigitalButNotExact) {
  const MlpNetwork network = make_random_network({16, 32, 8}, 3);
  Accelerator digital(std::make_unique<DigitalMvm>());
  PhotonicMvmConfig cfg;
  cfg.weight_bits = 8;
  Accelerator photonic(std::make_unique<PhotonicMvm>(cfg, 5));
  digital.load(network);
  photonic.load(network);

  std::vector<double> input(16);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = 0.1 * static_cast<double>(i) - 0.8;
  }
  const auto exact = digital.infer(input);
  const auto analog = photonic.infer(input);
  double err = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    err += std::fabs(exact[i] - analog[i]);
    scale += std::fabs(exact[i]);
  }
  EXPECT_GT(err, 0.0);            // analog noise is real
  EXPECT_LT(err, 0.2 * scale + 0.3);  // but small
}

TEST(PhotonicMvm, FarCheaperThanDigital) {
  const MlpNetwork network = make_random_network({32, 32}, 4);
  Accelerator digital(std::make_unique<DigitalMvm>());
  Accelerator photonic(std::make_unique<PhotonicMvm>(PhotonicMvmConfig{}, 6));
  digital.load(network);
  photonic.load(network);
  const std::vector<double> input(32, 0.5);
  digital.infer(input);
  photonic.infer(input);
  EXPECT_GT(digital.stats().energy_pj, 10.0 * photonic.stats().energy_pj);
}

TEST(PhotonicMvm, RejectsBadConfig) {
  PhotonicMvmConfig cfg;
  cfg.weight_bits = 0;
  EXPECT_THROW(PhotonicMvm(cfg, 1), std::invalid_argument);
}

// ---- Table I secure API --------------------------------------------------------

TEST(SecureApi, TableOneRoundTrip) {
  const crypto::Bytes key = crypto::bytes_of("device key from weak PUF");
  SecureAccelerator device(std::make_unique<DigitalMvm>(),
                           common::SecretBytes::copy_of(key));

  // Party with the key prepares ciphered blobs.
  const MlpNetwork network = tiny_network();
  const auto ciphered_network =
      SecureAccelerator::encrypt_network(network, key, 1);
  device.load_network(ciphered_network);
  EXPECT_TRUE(device.network_loaded());

  const auto ciphered_input =
      SecureAccelerator::encrypt_input({2.0, 3.0}, key, 2);
  const auto ciphered_output = device.execute_network(ciphered_input);
  const auto output = SecureAccelerator::decrypt_output(ciphered_output, key);
  ASSERT_EQ(output.size(), 2u);
  EXPECT_DOUBLE_EQ(output[0], 2.5);
  EXPECT_DOUBLE_EQ(output[1], 2.5);
}

TEST(SecureApi, OutputIsNotPlaintext) {
  const crypto::Bytes key = crypto::bytes_of("k");
  SecureAccelerator device(std::make_unique<DigitalMvm>(),
                           common::SecretBytes::copy_of(key));
  device.load_network(
      SecureAccelerator::encrypt_network(tiny_network(), key, 1));
  const auto ciphered_output = device.execute_network(
      SecureAccelerator::encrypt_input({2.0, 3.0}, key, 2));
  // The plaintext serialization must not appear inside the output frame.
  const auto plain = serialize_vector({2.5, 2.5});
  const std::string haystack(ciphered_output.begin(), ciphered_output.end());
  const std::string needle(plain.begin() + 4, plain.end());  // f64 bytes
  EXPECT_EQ(haystack.find(needle), std::string::npos);
}

TEST(SecureApi, WrongKeyRejected) {
  SecureAccelerator device(
      std::make_unique<DigitalMvm>(),
      common::SecretBytes(crypto::bytes_of("device key")));
  const auto blob = SecureAccelerator::encrypt_network(
      tiny_network(), crypto::bytes_of("attacker key"), 1);
  EXPECT_THROW(device.load_network(blob), std::runtime_error);
  EXPECT_FALSE(device.network_loaded());
}

TEST(SecureApi, TamperedBlobRejected) {
  const crypto::Bytes key = crypto::bytes_of("k");
  SecureAccelerator device(std::make_unique<DigitalMvm>(),
                           common::SecretBytes::copy_of(key));
  auto blob = SecureAccelerator::encrypt_network(tiny_network(), key, 1);
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_THROW(device.load_network(blob), std::runtime_error);
}

TEST(SecureApi, ExecuteBeforeLoadFails) {
  const crypto::Bytes key = crypto::bytes_of("k");
  SecureAccelerator device(std::make_unique<DigitalMvm>(),
                           common::SecretBytes::copy_of(key));
  EXPECT_THROW(
      device.execute_network(SecureAccelerator::encrypt_input({1.0}, key, 1)),
      std::logic_error);
}

TEST(SecureApi, FreshNoncePerExecution) {
  const crypto::Bytes key = crypto::bytes_of("k");
  SecureAccelerator device(std::make_unique<DigitalMvm>(),
                           common::SecretBytes::copy_of(key));
  device.load_network(
      SecureAccelerator::encrypt_network(tiny_network(), key, 1));
  const auto in = SecureAccelerator::encrypt_input({1.0, 1.0}, key, 2);
  const auto out1 = device.execute_network(in);
  const auto out2 = device.execute_network(in);
  // Same input, same plaintext result — but distinct ciphertexts.
  EXPECT_NE(out1, out2);
  EXPECT_EQ(SecureAccelerator::decrypt_output(out1, key),
            SecureAccelerator::decrypt_output(out2, key));
}

TEST(SecureApi, EmptyKeyRejected) {
  EXPECT_THROW(SecureAccelerator(std::make_unique<DigitalMvm>(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls::accel
