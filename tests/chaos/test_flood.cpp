// Hostile-load chaos (ctest label: chaos): the abuse-resistance
// invariants of ROADMAP item 4, driven end-to-end through
// core::AdmissionController + core::SessionEngine with
// faults::FloodAuthMachine attackers competing against honest sessions.
//
//   * zero false accepts — no flood shape ever completes a session
//     against a correct verifier;
//   * bounded memory — the controller's charged-byte high-water mark
//     never exceeds the configured budget, and the admission fast path
//     itself allocates nothing (counted operator new);
//   * liveness for honest clients — honest sessions converge while the
//     flood is shed, rate-limited, or evicted around them;
//   * restart resilience — a thundering herd of re-authentications after
//     a verifier restart against the durable CRP store all succeed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/alloc_probe.hpp"
#include "common/io.hpp"
#include "core/admission_control.hpp"
#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "faults/flood_adversary.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/crp_db.hpp"

NEUROPULS_DEFINE_ALLOC_PROBE()

namespace neuropuls {
namespace {

namespace io = common::io;

using core::AdmissionConfig;
using core::AdmissionController;
using core::AuthSessionMachine;
using core::RetryPolicy;
using core::SessionEngine;
using core::SessionEngineConfig;
using core::SessionReport;
using core::SessionResult;
using faults::FloodAuthMachine;
using faults::FloodMode;

struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  net::DuplexChannel channel;
};

std::unique_ptr<AuthFixture> make_fixture(std::uint64_t device_seed) {
  auto f = std::make_unique<AuthFixture>();
  f->puf =
      std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, device_seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("flood-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("flood firmware");
  f->device = std::make_unique<core::AuthDevice>(*f->puf,
                                                 provisioned.device_crp, memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  return f;
}

/// One submitted session: an honest AuthSessionMachine or a flood
/// attacker, tagged with its admission identity.
struct Slot {
  std::unique_ptr<AuthFixture> fixture;
  bool hostile = false;
  FloodMode mode = FloodMode::kMalformed;
  std::uint64_t client_id = 0;
  net::Message replay_seed;
  FloodAuthMachine* machine = nullptr;  // borrowed; dies with run()'s arena
  std::uint64_t observed_false_accepts = 0;
};

/// on_complete hook that snapshots each hostile machine's false-accept
/// counter at retirement, while the machine is still alive — the engine
/// arena destroys all machines when run() returns, so reading the raw
/// pointers afterwards would be use-after-free. Fires on worker threads,
/// but each submission index is written exactly once.
std::function<void(std::size_t)> snapshot_hook(std::vector<Slot>& slots) {
  return [&slots](std::size_t index) {
    Slot& slot = slots[index];
    if (slot.machine != nullptr) {
      slot.observed_false_accepts = slot.machine->false_accepts();
    }
  };
}

/// Submits every slot and runs the engine.
std::vector<SessionReport> run_mixed(SessionEngine& engine,
                                     std::vector<Slot>& slots,
                                     const RetryPolicy& policy) {
  for (std::size_t k = 0; k < slots.size(); ++k) {
    Slot& slot = slots[k];
    core::SubmitOptions options;
    options.client_id = slot.client_id;
    options.cost_bytes = 512;
    engine.submit(
        1000 + k,
        [&slot, &policy, k](crypto::ChaChaDrbg& rng)
            -> std::unique_ptr<core::SessionMachine> {
          if (!slot.hostile) {
            return std::make_unique<AuthSessionMachine>(
                slot.fixture->channel, policy, rng, *slot.fixture->verifier,
                *slot.fixture->device, 10 * (k + 1));
          }
          auto machine = std::make_unique<FloodAuthMachine>(
              slot.fixture->channel, policy, rng, *slot.fixture->verifier,
              slot.mode, slot.replay_seed);
          slot.machine = machine.get();
          return machine;
        },
        options);
  }
  return engine.run();
}

void expect_no_false_accepts(const std::vector<Slot>& slots,
                             const std::vector<SessionReport>& reports) {
  for (std::size_t k = 0; k < slots.size(); ++k) {
    if (!slots[k].hostile) continue;
    EXPECT_NE(reports[k].result, SessionResult::kConverged)
        << "hostile session " << k << " converged";
    EXPECT_EQ(slots[k].observed_false_accepts, 0u) << "hostile session " << k;
  }
}

TEST(FloodChaos, ReplayStormZeroFalseAccepts) {
  // 24 replay attackers, each storming a real verifier with genuinely
  // captured stale material, against 8 honest sessions.
  std::vector<Slot> slots;
  for (std::size_t k = 0; k < 8; ++k) {
    Slot honest;
    honest.fixture = make_fixture(100 + k);
    honest.client_id = k;  // distinct honest clients
    slots.push_back(std::move(honest));
  }
  for (std::size_t k = 0; k < 24; ++k) {
    Slot evil;
    evil.fixture = make_fixture(500 + k);
    evil.hostile = true;
    evil.mode = FloodMode::kReplay;
    evil.client_id = 9000 + (k % 3);  // a few hot attacker identities
    evil.replay_seed = faults::capture_replay_material(
        *evil.fixture->verifier, *evil.fixture->device, evil.fixture->channel,
        /*session_id=*/1, /*nonce=*/0xAB00 + k);
    slots.push_back(std::move(evil));
  }

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 64;  // rate limiting not under test here
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 8;
  config.admission = &controller;
  config.on_complete = snapshot_hook(slots);
  SessionEngine engine(pool, config);

  const RetryPolicy policy;
  const auto reports = run_mixed(engine, slots, policy);

  expect_no_false_accepts(slots, reports);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(reports[k].result, SessionResult::kConverged) << "honest " << k;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.admitted + stats.shed_rate_limited + stats.shed_memory,
            slots.size());
  // Every replayed frame the verifier rejected was charged as malformed.
  EXPECT_GT(stats.malformed, 0u);
  EXPECT_GT(controller.stats().malformed, 0u);
  // Everything completed, so the half-open table drained.
  EXPECT_EQ(controller.stats().half_open, 0u);
}

TEST(FloodChaos, MalformedFloodBurnsTheSendersBucket) {
  // One hostile identity floods malformed frames; its own garbage (4
  // malformed frames per exhausted session, charged at retirement) burns
  // the bucket far faster than refills arrive, so later sessions from
  // the same client are shed at the gate. Honest clients never notice.
  std::vector<Slot> slots;
  for (std::size_t k = 0; k < 8; ++k) {
    Slot evil;
    evil.fixture = make_fixture(700 + k);
    evil.hostile = true;
    evil.mode = FloodMode::kMalformed;
    evil.client_id = 666;
    slots.push_back(std::move(evil));
  }
  for (std::size_t k = 0; k < 2; ++k) {
    Slot honest;
    honest.fixture = make_fixture(200 + k);
    honest.client_id = k;
    slots.push_back(std::move(honest));
  }

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 16;
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 1;  // serialize admissions: burns precede admits
  config.admission = &controller;
  config.on_complete = snapshot_hook(slots);
  SessionEngine engine(pool, config);

  const RetryPolicy policy;  // max_attempts 4 -> 4 malformed frames/session
  const auto reports = run_mixed(engine, slots, policy);

  expect_no_false_accepts(slots, reports);
  // 16 tokens: each hostile session costs 1 admission + 4 malformed
  // burns, so only ~4 of 8 get in; without the malformed charge all 8
  // would fit.
  const auto stats = engine.stats();
  EXPECT_GT(stats.shed_rate_limited, 0u);
  std::size_t hostile_shed = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    if (reports[k].result == SessionResult::kShed) ++hostile_shed;
  }
  EXPECT_GE(hostile_shed, 4u);
  for (std::size_t k = 8; k < 10; ++k) {
    EXPECT_EQ(reports[k].result, SessionResult::kConverged) << "honest " << k;
  }
}

TEST(FloodChaos, OversizedFloodNeverReachesParseCode) {
  std::vector<Slot> slots;
  for (std::size_t k = 0; k < 6; ++k) {
    Slot evil;
    evil.fixture = make_fixture(800 + k);
    evil.hostile = true;
    evil.mode = FloodMode::kOversized;
    evil.client_id = 4242;
    slots.push_back(std::move(evil));
  }
  Slot honest;
  honest.fixture = make_fixture(300);
  honest.client_id = 1;
  slots.push_back(std::move(honest));

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 64;
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 4;
  config.admission = &controller;
  config.on_complete = snapshot_hook(slots);
  SessionEngine engine(pool, config);

  const RetryPolicy policy;  // max_frame_bytes default rejects the payloads
  const auto reports = run_mixed(engine, slots, policy);

  expect_no_false_accepts(slots, reports);
  EXPECT_EQ(reports.back().result, SessionResult::kConverged);
  // The oversized frames were discarded on length alone and counted.
  EXPECT_GT(engine.stats().malformed, 0u);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_GT(reports[k].malformed_frames, 0u) << "hostile " << k;
  }
}

TEST(FloodChaos, HalfOpenExhaustionEvictsOldestPerClient) {
  // One client opens sessions and goes silent. Its per-client cap forces
  // its own oldest half-open session out — the table never starves
  // honest clients and one identity cannot pin it.
  std::vector<Slot> slots;
  for (std::size_t k = 0; k < 6; ++k) {
    Slot evil;
    evil.fixture = make_fixture(900 + k);
    evil.hostile = true;
    evil.mode = FloodMode::kHalfOpen;
    evil.client_id = 31337;
    slots.push_back(std::move(evil));
  }
  for (std::size_t k = 0; k < 4; ++k) {
    Slot honest;
    honest.fixture = make_fixture(400 + k);
    honest.client_id = k;
    slots.push_back(std::move(honest));
  }

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 64;
  admission_config.half_open_slots = 8;
  admission_config.half_open_per_client = 2;
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 10;
  config.admission = &controller;
  config.on_complete = snapshot_hook(slots);
  SessionEngine engine(pool, config);

  const RetryPolicy policy;
  const auto reports = run_mixed(engine, slots, policy);

  expect_no_false_accepts(slots, reports);
  const auto stats = engine.stats();
  // 6 half-open sessions against a per-client cap of 2: at least 4 were
  // evicted (the exact count depends on retirement interleaving).
  EXPECT_GE(stats.evicted_half_open, 4u);
  std::size_t evicted_reports = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    if (reports[k].result == SessionResult::kEvicted) ++evicted_reports;
  }
  EXPECT_GE(evicted_reports, 4u);
  for (std::size_t k = 6; k < 10; ++k) {
    EXPECT_EQ(reports[k].result, SessionResult::kConverged) << "honest " << k;
  }
  EXPECT_EQ(controller.stats().half_open, 0u);
}

TEST(FloodChaos, MemoryBudgetHighWaterProvablyBounded) {
  // Sessions declare 1 KiB each against a 4 KiB global budget: at most 4
  // may be half-open at once no matter what the engine's in-flight limit
  // wants, and the controller's high-water mark proves it.
  std::vector<Slot> slots;
  for (std::size_t k = 0; k < 12; ++k) {
    Slot honest;
    honest.fixture = make_fixture(600 + k);
    honest.client_id = k;
    slots.push_back(std::move(honest));
  }

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 64;
  admission_config.global_budget_bytes = 4096;
  admission_config.session_budget_bytes = 2048;
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 8;
  config.admission = &controller;
  SessionEngine engine(pool, config);

  for (std::size_t k = 0; k < slots.size(); ++k) {
    Slot& slot = slots[k];
    core::SubmitOptions options;
    options.client_id = slot.client_id;
    options.cost_bytes = 1024;
    const RetryPolicy policy;
    engine.submit(
        1000 + k,
        [&slot, policy, k](crypto::ChaChaDrbg& rng)
            -> std::unique_ptr<core::SessionMachine> {
          return std::make_unique<AuthSessionMachine>(
              slot.fixture->channel, policy, rng, *slot.fixture->verifier,
              *slot.fixture->device, 10 * (k + 1));
        },
        options);
  }
  const auto reports = engine.run();

  const auto stats = controller.stats();
  EXPECT_LE(stats.peak_charged_bytes, 4096u);
  EXPECT_GT(stats.peak_charged_bytes, 0u);
  EXPECT_EQ(stats.charged_bytes, 0u);  // fully released
  EXPECT_EQ(stats.half_open, 0u);
  // Every admitted session converged; sheds (if the schedule produced
  // any) never built a machine, so their channels carry no traffic.
  for (std::size_t k = 0; k < reports.size(); ++k) {
    if (reports[k].result == SessionResult::kShed) {
      EXPECT_TRUE(slots[k].fixture->channel.transcript().empty())
          << "shed session " << k << " sent frames";
    } else {
      EXPECT_EQ(reports[k].result, SessionResult::kConverged) << k;
    }
  }
  // A session above the per-session cap is shed before anything runs.
  core::SubmitOptions oversized;
  oversized.cost_bytes = 4096;  // > session_budget_bytes
  const auto verdict = controller.try_admit(99, 99, oversized.cost_bytes);
  EXPECT_EQ(verdict.decision, core::AdmitDecision::kShedMemory);
}

TEST(FloodChaos, AdmissionFastPathAllocatesNothing) {
  AdmissionConfig admission_config;
  admission_config.client_slots = 64;
  admission_config.half_open_slots = 32;
  AdmissionController controller(admission_config);

  // Warm nothing: the constructor preallocated every table. The probe
  // covers admit/evict/complete/note_malformed/advance across enough
  // clients to force table churn and half-open eviction.
  const auto before = common::alloc_probe::allocations();
  std::size_t admitted = 0;
  for (std::uint64_t round = 0; round < 200; ++round) {
    controller.advance(1);
    const auto verdict =
        controller.try_admit(/*client_id=*/round % 97, /*handle=*/round,
                             /*cost_bytes=*/256);
    if (verdict.decision == core::AdmitDecision::kAdmitted) ++admitted;
    controller.note_malformed(round % 97, 1);
    if (round % 3 == 0) controller.complete(round);
  }
  (void)controller.stats();
  EXPECT_EQ(common::alloc_probe::allocations(), before)
      << "admission fast path allocated";
  EXPECT_GT(admitted, 0u);
}

TEST(FloodChaos, ThunderingHerdReauthAfterVerifierRestart) {
  // Fleet enrollment goes into the durable CRP store; the verifier
  // process "restarts" (store closed and recovered from disk); then the
  // whole fleet re-authenticates at once through admission control.
  constexpr std::size_t kFleet = 12;
  const io::TempDir dir("np-flood-herd");

  std::vector<std::unique_ptr<puf::ArbiterPuf>> pufs;
  std::vector<puf::Challenge> challenges;
  {
    puf::CrpDurabilityOptions options;
    options.directory = dir.path();
    puf::CrpDatabase db(2, options);
    crypto::ChaChaDrbg rng(crypto::bytes_of("herd-enroll"));
    for (std::size_t k = 0; k < kFleet; ++k) {
      pufs.push_back(
          std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, 50 + k));
      const auto provisioned = core::provision(*pufs[k], rng);
      challenges.push_back(provisioned.device_crp.challenge);
      db.insert({provisioned.device_crp.challenge,
                 provisioned.device_crp.response});
    }
  }  // clean shutdown: WAL drained

  // Restart: recover the store and rebuild every verifier from it.
  puf::CrpDurabilityOptions options;
  options.directory = dir.path();
  puf::CrpDatabase db(2, options);
  ASSERT_EQ(db.size(), kFleet);

  const crypto::Bytes memory = crypto::bytes_of("flood firmware");
  std::vector<std::unique_ptr<core::AuthDevice>> devices;
  std::vector<std::unique_ptr<core::AuthVerifier>> verifiers;
  std::vector<std::unique_ptr<net::DuplexChannel>> channels;
  for (std::size_t k = 0; k < kFleet; ++k) {
    const auto response = db.lookup(challenges[k]);
    ASSERT_TRUE(response.has_value()) << "CRP " << k << " lost in recovery";
    devices.push_back(std::make_unique<core::AuthDevice>(
        *pufs[k], core::ProvisionedCrp{challenges[k], *response}, memory));
    verifiers.push_back(std::make_unique<core::AuthVerifier>(
        *response, crypto::Sha256::hash(memory), pufs[k]->challenge_bytes()));
    channels.push_back(std::make_unique<net::DuplexChannel>());
  }

  AdmissionConfig admission_config;
  admission_config.bucket_capacity = 4;  // tight: the herd must still fit
  AdmissionController controller(admission_config);
  common::ThreadPool pool(2);
  SessionEngineConfig config;
  config.max_in_flight = 6;
  config.admission = &controller;
  SessionEngine engine(pool, config);

  const RetryPolicy policy;
  for (std::size_t k = 0; k < kFleet; ++k) {
    core::SubmitOptions submit_options;
    submit_options.client_id = k;  // every device is its own client
    submit_options.cost_bytes = 512;
    engine.submit(
        2000 + k,
        [&, k](crypto::ChaChaDrbg& rng)
            -> std::unique_ptr<core::SessionMachine> {
          return std::make_unique<AuthSessionMachine>(
              *channels[k], policy, rng, *verifiers[k], *devices[k],
              10 * (k + 1));
        },
        submit_options);
  }
  const auto reports = engine.run();

  for (std::size_t k = 0; k < kFleet; ++k) {
    EXPECT_EQ(reports[k].result, SessionResult::kConverged)
        << "device " << k << " failed re-auth after restart";
  }
  EXPECT_EQ(engine.stats().admitted, kFleet);
  EXPECT_EQ(engine.stats().shed_rate_limited, 0u);
  EXPECT_EQ(controller.stats().half_open, 0u);
}

}  // namespace
}  // namespace neuropuls
