// Park/wake race chaos (ctest labels: chaos + concurrency — the TSan
// flavor of scripts/check.sh covers this binary).
//
// The reactor's most delicate window is the park boundary: a session
// decides its channel cannot progress and goes onto the timer wheel at
// the same moment a frame arrives for it. These tests drive exactly that
// window from two sides:
//
//   * a delay-injecting FaultyChannel holds frames for 1..8 poll ticks
//     while the engine's park threshold sits in the middle of that range,
//     so deliveries land right at park decisions;
//   * an external notify() storm wakes random sessions from another
//     thread for the whole run — every spurious wake a real transport
//     could ever produce, compressed into one test.
//
// Invariants asserted: no session is lost or completed twice
// (on_complete fires exactly once per submission index), no session is
// ever stepped by two workers at once (the engine's atomic guard throws,
// which would fail the run), and — the determinism contract — every
// per-session transcript stays byte-identical to a serial SessionDriver
// run no matter how the wakes land.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "faults/faulty_channel.hpp"
#include "net/message.hpp"
#include "puf/arbiter_puf.hpp"

namespace neuropuls {
namespace {

using core::AuthSessionMachine;
using core::RetryPolicy;
using core::SessionDriver;
using core::SessionEngine;
using core::SessionEngineConfig;
using core::SessionReport;
using core::SessionResult;
using net::Direction;
using net::DuplexChannel;

struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  DuplexChannel channel;
  std::unique_ptr<faults::FaultyChannel> faulty;
};

// Delay-dominated link: most of the chaos is frames arriving late, right
// around the park threshold, rather than vanishing.
faults::ChannelFaultConfig park_boundary_faults() {
  faults::LinkFaultRates rates;
  rates.drop = 0.05;
  rates.delay = 0.45;
  rates.max_delay_polls = 8;  // straddles park_threshold below
  return faults::symmetric_faults(rates);
}

std::unique_ptr<AuthFixture> make_fixture(std::uint64_t device_seed,
                                          std::uint64_t fault_seed) {
  auto f = std::make_unique<AuthFixture>();
  f->puf =
      std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{}, device_seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("park-wake-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("park-wake firmware");
  f->device = std::make_unique<core::AuthDevice>(*f->puf,
                                                 provisioned.device_crp, memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  f->faulty = std::make_unique<faults::FaultyChannel>(
      f->channel, park_boundary_faults(), fault_seed);
  return f;
}

crypto::Bytes serialize_transcript(const DuplexChannel& channel) {
  crypto::Bytes out;
  for (const auto& entry : channel.transcript()) {
    out.push_back(entry.direction == Direction::kAtoB ? 0 : 1);
    out.push_back(entry.delivered ? 1 : 0);
    const auto wire = net::encode_message(entry.message);
    crypto::append_u32_be(out, static_cast<std::uint32_t>(wire.size()));
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

void run_serial(std::size_t sessions, std::vector<crypto::Bytes>& transcripts,
                std::vector<SessionReport>& reports) {
  for (std::size_t k = 0; k < sessions; ++k) {
    auto f = make_fixture(4000 + k, 0xBEEF + k);
    RetryPolicy policy;
    policy.seed = 700 + k;
    SessionDriver driver(f->channel, policy);
    reports.push_back(
        driver.run_mutual_auth(*f->verifier, *f->device, 10 * (k + 1)));
    transcripts.push_back(serialize_transcript(f->channel));
  }
}

// Shared body: reactor run over delay-heavy links, optionally with an
// external notify() storm, checked against the serial baseline.
void run_park_wake_scenario(bool notify_storm) {
  constexpr std::size_t kSessions = 12;
  std::vector<crypto::Bytes> serial_t;
  std::vector<SessionReport> serial_r;
  run_serial(kSessions, serial_t, serial_r);

  std::vector<std::unique_ptr<AuthFixture>> fixtures;
  for (std::size_t k = 0; k < kSessions; ++k) {
    fixtures.push_back(make_fixture(4000 + k, 0xBEEF + k));
  }
  common::ThreadPool pool(4);
  SessionEngineConfig config;
  config.max_in_flight = 6;
  // Sits inside the fault layer's 1..8-tick delay window: a held frame
  // can deliver on the very poll that precedes a park decision.
  config.park_threshold = notify_storm ? 1 : 4;
  std::vector<std::atomic<unsigned>> completions(kSessions);
  config.on_complete = [&completions](std::size_t index) {
    completions[index].fetch_add(1, std::memory_order_relaxed);
  };
  SessionEngine engine(pool, config);
  const RetryPolicy policy;
  for (std::size_t k = 0; k < kSessions; ++k) {
    AuthFixture& f = *fixtures[k];
    engine.submit(700 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }

  std::atomic<bool> stop{false};
  std::thread storm;
  if (notify_storm) {
    storm = std::thread([&engine, &stop] {
      // Hammer parked (and running, and retired) sessions with wakes; a
      // spurious wake only makes a session poll earlier, never changes
      // what it does.
      std::uint64_t x = 0x9E3779B97F4A7C15ull;
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        engine.notify(static_cast<std::size_t>(x % kSessions));
      }
    });
  }
  const auto reports = engine.run();
  stop.store(true, std::memory_order_relaxed);
  if (storm.joinable()) storm.join();

  ASSERT_EQ(reports.size(), kSessions);
  for (std::size_t k = 0; k < kSessions; ++k) {
    // Exactly-once completion: never lost, never double-retired.
    EXPECT_EQ(completions[k].load(), 1u) << "session " << k;
    // Byte-identical to serial despite delays at park boundaries (and
    // the storm, when enabled).
    EXPECT_EQ(serial_t[k], serialize_transcript(fixtures[k]->channel))
        << "session " << k;
    EXPECT_EQ(reports[k].result, serial_r[k].result) << "session " << k;
    EXPECT_EQ(reports[k].attempts, serial_r[k].attempts) << "session " << k;
    EXPECT_EQ(reports[k].poll_ticks, serial_r[k].poll_ticks)
        << "session " << k;
    EXPECT_EQ(reports[k].backoff_ticks, serial_r[k].backoff_ticks)
        << "session " << k;
  }
  EXPECT_EQ(engine.stats().completed, kSessions);
}

TEST(ParkWakeChaos, DelaysAtParkBoundariesPreserveDeterminism) {
  run_park_wake_scenario(/*notify_storm=*/false);
}

TEST(ParkWakeChaos, NotifyStormCannotChangeAnySessionByte) {
  run_park_wake_scenario(/*notify_storm=*/true);
}

// notify() outside a run must be a harmless no-op, including on an
// engine that has already finished (the transport may race shutdown).
TEST(ParkWakeChaos, NotifyOutsideRunIsANoOp) {
  common::ThreadPool pool(2);
  SessionEngine engine(pool, SessionEngineConfig{});
  engine.notify(0);  // nothing submitted, nothing running
  auto f = make_fixture(4100, 0xD00D);
  const RetryPolicy policy;
  engine.submit(900, [&](crypto::ChaChaDrbg& rng) {
    return std::make_unique<AuthSessionMachine>(f->channel, policy, rng,
                                                *f->verifier, *f->device, 10);
  });
  const auto reports = engine.run();
  ASSERT_EQ(reports.size(), 1u);
  engine.notify(0);  // after the run: session records are gone
  EXPECT_EQ(reports[0].result, SessionResult::kConverged);
}

}  // namespace
}  // namespace neuropuls
