// Chaos suite (ctest label: chaos): sweeps seeded fault rates over the
// full device/protocol stack and asserts the graceful-degradation
// invariants that DESIGN.md's fault-model section promises:
//
//   * no false accept — a session that converges always leaves both
//     parties on the same secret / session key, at every corruption rate;
//   * bounded recovery — at low loss the retry driver converges within
//     its budget; at total loss it exhausts cleanly (bounded ticks, no
//     state damage) and a later clean session recovers;
//   * determinism — identical seeds reproduce byte-identical channel
//     transcripts, fault schedule included;
//   * device-level degradation — robust (k-of-n) derivation recovers keys
//     under thermal-spike faults, persistent diode death drives CRP
//     quarantine/eviction, and the accelerator health model walks
//     Healthy -> Degraded -> LockedOut and back only via reset.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/secure_api.hpp"
#include "core/key_manager.hpp"
#include "core/session_driver.hpp"
#include "crypto/aes.hpp"
#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "faults/device_faults.hpp"
#include "faults/faulty_channel.hpp"
#include "puf/crp_db.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls {
namespace {

using core::AuthDevice;
using core::AuthVerifier;
using core::RetryPolicy;
using core::SessionDriver;
using core::SessionResult;
using faults::ChannelFaultConfig;
using faults::DeviceFaultConfig;
using faults::DeviceFaultModel;
using faults::FaultyChannel;
using faults::LinkFaultRates;
using net::Direction;
using net::DuplexChannel;

// ------------------------------------------------------------- harness

struct AuthHarness {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<AuthDevice> device;
  std::unique_ptr<AuthVerifier> verifier;
  std::unique_ptr<DuplexChannel> channel;
};

AuthHarness make_auth_harness() {
  AuthHarness h;
  h.channel = std::make_unique<DuplexChannel>();
  h.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(), 71,
                                             /*device_index=*/0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("chaos-provision"));
  const auto provisioned = core::provision(*h.puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("chaos firmware image");
  h.device =
      std::make_unique<AuthDevice>(*h.puf, provisioned.device_crp, memory);
  h.verifier = std::make_unique<AuthVerifier>(provisioned.verifier_secret,
                                              crypto::Sha256::hash(memory),
                                              h.puf->challenge_bytes());
  return h;
}

bool in_sync(const AuthHarness& h) {
  return common::ct_equal(h.device->current_response(),
                          h.verifier->current_secret());
}

LinkFaultRates mixed_rates(double per_fault) {
  LinkFaultRates rates;
  rates.drop = per_fault;
  rates.corrupt = per_fault;
  rates.duplicate = per_fault;
  rates.delay = per_fault;
  rates.reorder = per_fault;
  rates.max_delay_polls = 4;
  return rates;
}

crypto::Bytes serialize_transcript(const DuplexChannel& channel) {
  crypto::Bytes out;
  for (const auto& entry : channel.transcript()) {
    out.push_back(entry.direction == Direction::kAtoB ? 0 : 1);
    out.push_back(entry.delivered ? 1 : 0);
    const auto wire = net::encode_message(entry.message);
    crypto::append_u32_be(out, static_cast<std::uint32_t>(wire.size()));
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

// ---------------------------------------------------------- mutual auth

TEST(ChaosAuth, ConvergesAtOnePercentDrop) {
  AuthHarness h = make_auth_harness();
  FaultyChannel faulty(*h.channel,
                       faults::symmetric_faults(faults::symmetric_drop(0.01)),
                       0xC1);
  SessionDriver driver(*h.channel, RetryPolicy{});
  constexpr unsigned kSessions = 10;
  for (unsigned s = 0; s < kSessions; ++s) {
    const auto report =
        driver.run_mutual_auth(*h.verifier, *h.device, 1000 * (s + 1));
    ASSERT_EQ(report.result, SessionResult::kConverged) << "session " << s;
    EXPECT_LE(report.attempts, driver.policy().max_attempts);
    EXPECT_TRUE(in_sync(h)) << "session " << s;
  }
  EXPECT_EQ(h.device->completed_sessions(), kSessions);
}

TEST(ChaosAuth, NoFalseAcceptAtAnyCorruptionRate) {
  for (const double rate : {0.05, 0.20, 0.50}) {
    AuthHarness h = make_auth_harness();
    LinkFaultRates rates;
    rates.corrupt = rate;
    {
      FaultyChannel faulty(*h.channel, faults::symmetric_faults(rates),
                           0xC2 + static_cast<std::uint64_t>(rate * 100));
      SessionDriver driver(*h.channel, RetryPolicy{});
      for (unsigned s = 0; s < 8; ++s) {
        const auto report =
            driver.run_mutual_auth(*h.verifier, *h.device, 1000 * (s + 1));
        // THE invariant: convergence always means agreement. A corrupted
        // frame may cost attempts but can never complete a session with
        // divergent secrets.
        if (report.result == SessionResult::kConverged) {
          EXPECT_TRUE(in_sync(h)) << "rate " << rate << " session " << s;
        }
      }
    }
    // Whatever the carnage, a clean channel recovers the pairing (the
    // verifier's one-deep fallback absorbs lost confirms).
    SessionDriver driver(*h.channel, RetryPolicy{});
    const auto report =
        driver.run_mutual_auth(*h.verifier, *h.device, 100000);
    EXPECT_EQ(report.result, SessionResult::kConverged) << "rate " << rate;
    EXPECT_TRUE(in_sync(h)) << "rate " << rate;
  }
}

TEST(ChaosAuth, TotalLossExhaustsCleanlyThenRecovers) {
  AuthHarness h = make_auth_harness();
  {
    FaultyChannel faulty(*h.channel,
                         faults::symmetric_faults(faults::symmetric_drop(1.0)),
                         0xC3);
    SessionDriver driver(*h.channel, RetryPolicy{});
    const auto report = driver.run_mutual_auth(*h.verifier, *h.device, 1000);
    EXPECT_EQ(report.result, SessionResult::kExhausted);
    EXPECT_EQ(report.attempts, driver.policy().max_attempts);
    // Bounded work: every attempt can burn at most the per-receive budget
    // on each of its three expect() calls, plus capped backoff.
    const auto& p = driver.policy();
    EXPECT_LE(report.poll_ticks,
              static_cast<std::uint64_t>(p.max_attempts) * 3 *
                  p.receive_poll_budget);
    EXPECT_LE(report.backoff_ticks,
              static_cast<std::uint64_t>(p.max_attempts) *
                  (p.backoff_max_polls + p.backoff_base_polls));
    EXPECT_EQ(h.device->completed_sessions(), 0u);
  }
  // The faulty layer is gone; the same endpoints converge immediately.
  SessionDriver driver(*h.channel, RetryPolicy{});
  const auto report = driver.run_mutual_auth(*h.verifier, *h.device, 2000);
  EXPECT_EQ(report.result, SessionResult::kConverged);
  EXPECT_TRUE(in_sync(h));
}

TEST(ChaosAuth, BackoffSaturatesAtCapForLargeAttemptCounts) {
  AuthHarness h = make_auth_harness();
  FaultyChannel faulty(*h.channel,
                       faults::symmetric_faults(faults::symmetric_drop(1.0)),
                       0xC5);
  RetryPolicy policy;
  policy.max_attempts = 70;  // drives the backoff shift past 63
  policy.receive_poll_budget = 1;
  SessionDriver driver(*h.channel, policy);
  const auto report = driver.run_mutual_auth(*h.verifier, *h.device, 3000);
  EXPECT_EQ(report.result, SessionResult::kExhausted);
  EXPECT_EQ(report.attempts, policy.max_attempts);

  // Regression: once `base << shift` would overflow the type width the
  // exponential term must *saturate* at backoff_max_polls, not wrap to
  // zero and silently collapse the backoff to jitter only.
  std::uint64_t min_expected = 0;
  for (unsigned attempt = 2; attempt <= policy.max_attempts; ++attempt) {
    const unsigned shift = attempt - 2;
    std::uint64_t exp = policy.backoff_max_polls;
    if (shift < 32 && (policy.backoff_base_polls << shift) < exp) {
      exp = policy.backoff_base_polls << shift;
    }
    min_expected += exp;
  }
  EXPECT_GE(report.backoff_ticks, min_expected);
  // Upper bound: per-backoff jitter is in [0, base).
  EXPECT_LE(report.backoff_ticks,
            min_expected +
                (policy.max_attempts - 1) * policy.backoff_base_polls);
}

TEST(ChaosAuth, MixedFaultSweepMaintainsInvariants) {
  AuthHarness h = make_auth_harness();
  unsigned converged = 0;
  constexpr unsigned kSessions = 12;
  {
    FaultyChannel faulty(*h.channel,
                         faults::symmetric_faults(mixed_rates(0.05)), 0xC4);
    SessionDriver driver(*h.channel, RetryPolicy{});
    for (unsigned s = 0; s < kSessions; ++s) {
      const auto report =
          driver.run_mutual_auth(*h.verifier, *h.device, 1000 * (s + 1));
      if (report.result == SessionResult::kConverged) {
        ++converged;
        EXPECT_TRUE(in_sync(h)) << "session " << s;
      }
      EXPECT_LE(report.attempts, driver.policy().max_attempts);
    }
    faulty.flush();
  }
  // At 5% per fault family most sessions get through within the retry
  // budget; all of them must have kept the endpoints consistent.
  EXPECT_GE(converged, kSessions / 2);
  SessionDriver driver(*h.channel, RetryPolicy{});
  EXPECT_EQ(driver.run_mutual_auth(*h.verifier, *h.device, 100000).result,
            SessionResult::kConverged);
  EXPECT_TRUE(in_sync(h));
}

// ------------------------------------------------------------ eke chaos

const crypto::DhGroup& group() { return crypto::DhGroup::modp1536(); }

TEST(ChaosEke, ConvergedKeysAlwaysMatch) {
  const crypto::Bytes secret = crypto::bytes_of("chaos shared crp response");
  core::EkeParty initiator(secret, group(),
                           crypto::ChaChaDrbg(crypto::bytes_of("chaos-i")));
  core::EkeParty responder(secret, group(),
                           crypto::ChaChaDrbg(crypto::bytes_of("chaos-r")));
  DuplexChannel channel;
  LinkFaultRates rates;
  rates.drop = 0.05;
  rates.corrupt = 0.10;
  FaultyChannel faulty(channel, faults::symmetric_faults(rates), 0xE1);
  SessionDriver driver(channel, RetryPolicy{});
  const auto report = driver.run_eke(initiator, responder, 5000);
  ASSERT_EQ(report.result, SessionResult::kConverged);
  EXPECT_EQ(initiator.session_key().size(), 32u);
  EXPECT_TRUE(common::ct_equal(initiator.session_key(),
                               responder.session_key()));
}

TEST(ChaosEke, TotalLossExhaustsWithoutAKey) {
  const crypto::Bytes secret = crypto::bytes_of("chaos shared crp response");
  core::EkeParty initiator(secret, group(),
                           crypto::ChaChaDrbg(crypto::bytes_of("chaos-i3")));
  core::EkeParty responder(secret, group(),
                           crypto::ChaChaDrbg(crypto::bytes_of("chaos-r3")));
  DuplexChannel channel;
  FaultyChannel faulty(channel,
                       faults::symmetric_faults(faults::symmetric_drop(1.0)),
                       0xE2);
  // Two attempts keep the (modexp-heavy) exhaustion path cheap.
  RetryPolicy policy;
  policy.max_attempts = 2;
  SessionDriver driver(channel, policy);
  const auto report = driver.run_eke(initiator, responder, 6000);
  EXPECT_EQ(report.result, SessionResult::kExhausted);
  // The initiator never saw a server hello: no key on its side.
  EXPECT_TRUE(initiator.session_key().empty());
}

// ---------------------------------------------------------- determinism

TEST(ChaosDeterminism, SameSeedsByteIdenticalTranscripts) {
  const auto run = [](std::uint64_t channel_seed) {
    AuthHarness h = make_auth_harness();
    FaultyChannel faulty(*h.channel,
                         faults::symmetric_faults(mixed_rates(0.08)),
                         channel_seed);
    RetryPolicy policy;
    policy.seed = 7;
    SessionDriver driver(*h.channel, policy);
    for (unsigned s = 0; s < 5; ++s) {
      (void)driver.run_mutual_auth(*h.verifier, *h.device, 1000 * (s + 1));
    }
    faulty.flush();
    return serialize_transcript(*h.channel);
  };
  const auto first = run(0xD1);
  const auto second = run(0xD1);
  EXPECT_EQ(first, second);  // byte-identical, fault schedule included
  EXPECT_NE(first, run(0xD2));  // and the seed really drives the schedule
}

// --------------------------------------------------------- device chaos

TEST(ChaosDevice, RobustKeyDerivationUnderThermalSpikes) {
  puf::PhotonicPuf p(puf::small_photonic_config(), 2024, 0);
  core::KeyManager manager(p);
  crypto::ChaChaDrbg rng(crypto::bytes_of("chaos-enroll"));
  const auto record = manager.enroll(rng);
  const auto healthy = manager.derive(record);
  ASSERT_TRUE(healthy.has_value());

  DeviceFaultConfig config;
  config.thermal = {/*spike_probability=*/0.4, /*magnitude_kelvin=*/1.5};
  p.set_fault_model(std::make_shared<const DeviceFaultModel>(config, 31));

  const auto robust = manager.derive_robust(record, /*attempts=*/4,
                                            /*readings=*/5);
  ASSERT_TRUE(robust.has_value());
  // Robust derivation recovers the *enrolled* key hierarchy, not merely
  // some key: majority re-measurement pushes the spiked readings back
  // inside the code's correction radius.
  EXPECT_TRUE(common::ct_equal(robust->encryption_key,
                               healthy->encryption_key));
  EXPECT_TRUE(common::ct_equal(robust->mac_key, healthy->mac_key));
  EXPECT_TRUE(common::ct_equal(robust->binding_key, healthy->binding_key));
}

TEST(ChaosDevice, DeadPhotodiodeDrivesCrpQuarantine) {
  puf::PhotonicPuf p(puf::small_photonic_config(), 909, 0);
  std::vector<puf::Challenge> challenges;
  for (std::uint8_t i = 0; i < 6; ++i) {
    crypto::Bytes c(p.challenge_bytes(), 0);
    for (std::size_t k = 0; k < c.size(); ++k) {
      c[k] = static_cast<std::uint8_t>(0x11 * (i + 1) + 7 * k);
    }
    challenges.push_back(c);
  }
  puf::CrpDatabase db;
  db.set_quarantine_threshold(2);
  for (const auto& c : challenges) {
    db.insert({c, p.evaluate_robust(c, 5)});  // healthy enrollment
  }

  DeviceFaultConfig config;
  config.photodiodes.push_back({/*port=*/0, /*responsivity_scale=*/0.0});
  p.set_fault_model(std::make_shared<const DeviceFaultModel>(config, 5));

  // Verifier-side authentication rounds: a reading too far from the
  // enrolled response is a failure against that CRP.
  for (int round = 0; round < 2; ++round) {
    for (const auto& c : challenges) {
      const auto stored = db.lookup(c);
      if (!stored) continue;  // already quarantined
      const double err =
          crypto::fractional_hamming_distance(p.evaluate(c), *stored);
      if (err > 0.10) {
        db.record_failure(c);
      } else {
        db.record_success(c);
      }
    }
  }
  // A dead diode corrupts every response that touches its port pair —
  // persistent failures, so quarantine fires.
  EXPECT_GT(db.quarantined(), 0u);
  const std::size_t evicted = db.evict_quarantined();
  EXPECT_GT(evicted, 0u);
  EXPECT_EQ(db.quarantined(), 0u);
  EXPECT_EQ(db.size(), challenges.size() - evicted);
}

// ----------------------------------------------------- accelerator health

accel::MlpNetwork tiny_network() {
  accel::MlpNetwork network;
  accel::Layer layer;
  layer.inputs = 2;
  layer.outputs = 2;
  layer.weights = {1.0, 0.0, 0.0, 1.0};
  layer.biases = {0.5, -0.5};
  layer.activation = accel::Activation::kLinear;
  network.layers.push_back(layer);
  return network;
}

TEST(ChaosAccel, HealthWalksDegradedToLockoutAndResets) {
  const crypto::Bytes key = crypto::bytes_of("chaos accel key");
  accel::SecureAccelerator device(std::make_unique<accel::DigitalMvm>(),
                                  common::SecretBytes::copy_of(key),
                                  accel::HealthPolicy{2, 4});
  device.load_network(
      accel::SecureAccelerator::encrypt_network(tiny_network(), key, 1));
  ASSERT_EQ(device.health(), accel::HealthState::kHealthy);

  std::uint64_t nonce = 2;
  const auto bad_input = [&] {
    auto blob =
        accel::SecureAccelerator::encrypt_input({1.0, 2.0}, key, nonce++);
    blob.back() ^= 0x01;  // break the MAC
    return blob;
  };
  const auto good_input = [&] {
    return accel::SecureAccelerator::encrypt_input({1.0, 2.0}, key, nonce++);
  };

  EXPECT_THROW(device.execute_network(bad_input()), std::runtime_error);
  EXPECT_EQ(device.health(), accel::HealthState::kHealthy);  // 1 failure
  EXPECT_THROW(device.execute_network(bad_input()), std::runtime_error);
  EXPECT_EQ(device.health(), accel::HealthState::kDegraded);  // 2 failures
  // Degraded still serves valid traffic, and a success heals fully.
  EXPECT_NO_THROW(device.execute_network(good_input()));
  EXPECT_EQ(device.health(), accel::HealthState::kHealthy);
  EXPECT_EQ(device.consecutive_failures(), 0u);

  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(device.execute_network(bad_input()), std::runtime_error);
  }
  EXPECT_EQ(device.health(), accel::HealthState::kLockedOut);
  EXPECT_EQ(device.consecutive_failures(), 4u);
  // Locked out: even valid ciphertext is refused, distinguishably.
  EXPECT_THROW(device.execute_network(good_input()), accel::LockedOutError);
  EXPECT_THROW(
      device.load_network(
          accel::SecureAccelerator::encrypt_network(tiny_network(), key, 99)),
      accel::LockedOutError);
  EXPECT_EQ(device.health(), accel::HealthState::kLockedOut);  // sticky

  device.reset_health();
  EXPECT_EQ(device.health(), accel::HealthState::kHealthy);
  EXPECT_NO_THROW(device.execute_network(good_input()));
}

TEST(ChaosAccel, MalformedAuthenticBlobCountsTowardDegradation) {
  const crypto::Bytes key = crypto::bytes_of("chaos accel key");
  accel::SecureAccelerator device(std::make_unique<accel::DigitalMvm>(),
                                  common::SecretBytes::copy_of(key),
                                  accel::HealthPolicy{1, 3});
  // MAC-valid frames whose *plaintext* fails to parse (a version-skewed
  // peer holding the right key): the parse failure must surface as a
  // clean runtime_error, count toward degradation, and — exercised under
  // the ASan chaos flavor — wipe the decrypted plaintext on the way out.
  const crypto::Bytes junk = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_THROW(
      device.load_network(
          crypto::aes_ctr_then_mac_seal(key, crypto::Bytes(16, 9), junk)),
      std::runtime_error);
  EXPECT_EQ(device.health(), accel::HealthState::kDegraded);
  EXPECT_EQ(device.consecutive_failures(), 1u);

  device.reset_health();
  device.load_network(
      accel::SecureAccelerator::encrypt_network(tiny_network(), key, 1));
  EXPECT_THROW(
      device.execute_network(
          crypto::aes_ctr_then_mac_seal(key, crypto::Bytes(16, 10), junk)),
      std::runtime_error);
  EXPECT_EQ(device.health(), accel::HealthState::kDegraded);
  // A well-formed exchange heals as usual.
  EXPECT_NO_THROW(device.execute_network(
      accel::SecureAccelerator::encrypt_input({1.0, 2.0}, key, 11)));
  EXPECT_EQ(device.health(), accel::HealthState::kHealthy);
}

TEST(ChaosAccel, MissingNetworkIsNotAHealthFailure) {
  const crypto::Bytes key = crypto::bytes_of("chaos accel key");
  accel::SecureAccelerator device(std::make_unique<accel::DigitalMvm>(),
                                  common::SecretBytes::copy_of(key),
                                  accel::HealthPolicy{1, 2});
  // Operator error (no network loaded) is a logic_error and must not
  // count toward crypto-failure lockout.
  EXPECT_THROW(device.execute_network(
                   accel::SecureAccelerator::encrypt_input({1.0}, key, 1)),
               std::logic_error);
  EXPECT_EQ(device.health(), accel::HealthState::kHealthy);
  EXPECT_EQ(device.consecutive_failures(), 0u);
}

TEST(ChaosAccel, HealthPolicyValidated) {
  const crypto::Bytes key = crypto::bytes_of("k");
  EXPECT_THROW(
      accel::SecureAccelerator(std::make_unique<accel::DigitalMvm>(),
                               common::SecretBytes::copy_of(key),
                               accel::HealthPolicy{0, 5}),
      std::invalid_argument);
  EXPECT_THROW(
      accel::SecureAccelerator(std::make_unique<accel::DigitalMvm>(),
                               common::SecretBytes::copy_of(key),
                               accel::HealthPolicy{3, 2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace neuropuls
