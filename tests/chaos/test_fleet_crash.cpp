// Crash-point sweep for fleet key rotation (ctest labels: chaos, fleet, io).
//
// A rotation sweep retires each device's generation-0 CRP after durably
// inserting its generation-1 replacement (insert -> sync -> take, per
// wave). The crash model is the WAL's: the verifier dies and the log
// ends early at an arbitrary byte. The sweep builds one pristine image
// of a fleet that enrolled and then fully rotated, truncates a copy at
// EVERY byte offset inside the rotation suffix, reopens, and drives
// recover_state() + resume_rotation(). The oracle (in the style of
// test_crp_crash):
//
//   * no device is ever keyless — at every cut each device recovers
//     with at least one live CRP, because replacements hit stable
//     storage before the old pair is consumed,
//   * no CRP double-issue — a challenge whose take record survived the
//     crash is absent from the recovered store and never served again,
//   * resume_rotation classifies every device into exactly one of
//     {already rotated, finish the take, redo the rotation} and leaves
//     the fleet in the fully-rotated end state, after which the whole
//     fleet still authenticates.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "fleet/fleet.hpp"
#include "puf/crp_db.hpp"
#include "puf/crp_wal.hpp"

namespace neuropuls::fleet {
namespace {

namespace io = common::io;

constexpr std::size_t kDevices = 12;

FleetConfig crash_config() {
  FleetConfig config;
  config.devices = kDevices;
  config.generations = 1;
  config.wave_size = 4;  // several insert/take groups in the rotation log
  return config;
}

std::uint32_t read_u32_be(const crypto::Bytes& image, std::size_t offset) {
  return (static_cast<std::uint32_t>(image[offset]) << 24) |
         (static_cast<std::uint32_t>(image[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(image[offset + 2]) << 8) |
         static_cast<std::uint32_t>(image[offset + 3]);
}

void write_file(const std::string& path, crypto::ByteView data) {
  io::File file = io::File::create_truncate(path);
  file.write_all(data);
}

class FleetCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new SharedState();
    SharedState& s = *state_;
    {
      puf::CrpDurabilityOptions options;
      options.directory = s.source.path();
      puf::CrpDatabase db(1, options);
      FleetSimulator fleet(crash_config(), db);
      fleet.enroll();
      const CampaignReport sweep = fleet.run_rotation_sweep();
      ASSERT_EQ(sweep.rotated, kDevices);
      ASSERT_EQ(fleet.count_keyless(), 0u);
    }  // clean close: whole records, torn-free

    s.manifest = io::read_file(puf::wal::manifest_path(s.source.path()));
    s.image = io::read_file(puf::wal::wal_path(s.source.path(), 0, 0));

    std::size_t offset = 0;
    while (offset + puf::wal::kRecordHeaderBytes <= s.image.size()) {
      const std::uint32_t len = read_u32_be(s.image, offset);
      offset += puf::wal::kRecordHeaderBytes + len;
      s.record_ends.push_back(offset);
    }
    ASSERT_EQ(offset, s.image.size());
    s.records = puf::wal::decode_wal(s.image).records;
    ASSERT_EQ(s.records.size(), s.record_ends.size());

    // The enrollment prefix: the first kDevices insert records. Crashes
    // inside it model a death during manufacturing intake, not mid-
    // rotation — the sweep starts at its end.
    std::size_t inserts = 0;
    s.enroll_end = 0;
    for (std::size_t r = 0; r < s.records.size(); ++r) {
      if (s.records[r].type == puf::wal::RecordType::kInsert) {
        ++inserts;
        if (inserts == kDevices) {
          s.enroll_end = s.record_ends[r];
          break;
        }
      }
    }
    ASSERT_GT(s.enroll_end, 0u);
    ASSERT_LT(s.enroll_end, s.image.size());
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct SharedState {
    io::TempDir source{"np-fleet-crash-src"};
    crypto::Bytes manifest;
    crypto::Bytes image;  // records reference this — keep it alive
    std::vector<std::size_t> record_ends;
    std::vector<puf::wal::RecordView> records;
    std::size_t enroll_end = 0;
  };
  static SharedState* state_;

  static void stage(const std::string& dir, crypto::ByteView wal_image) {
    write_file(puf::wal::manifest_path(dir), state_->manifest);
    write_file(puf::wal::wal_path(dir, 0, 0), wal_image);
  }

  static puf::CrpDurabilityOptions open_options(const std::string& dir) {
    puf::CrpDurabilityOptions options;
    options.directory = dir;
    options.durable_take = false;  // keep the byte sweep at memory speed
    return options;
  }

  /// Challenges whose take record survives in the first `cut` bytes.
  static std::set<crypto::Bytes> consumed_within(std::size_t cut) {
    const SharedState& s = *state_;
    std::set<crypto::Bytes> consumed;
    for (std::size_t r = 0;
         r < s.record_ends.size() && s.record_ends[r] <= cut; ++r) {
      if (s.records[r].type == puf::wal::RecordType::kTake) {
        consumed.emplace(s.records[r].challenge.begin(),
                         s.records[r].challenge.end());
      }
    }
    return consumed;
  }
};

FleetCrashTest::SharedState* FleetCrashTest::state_ = nullptr;

TEST_F(FleetCrashTest, ResumeAtEveryByteLeavesNoDeviceKeyless) {
  const SharedState& s = *state_;
  for (std::size_t cut = s.enroll_end; cut <= s.image.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    const std::set<crypto::Bytes> consumed = consumed_within(cut);

    const io::TempDir dir("np-fleet-crash");
    stage(dir.path(), {s.image.data(), cut});
    puf::CrpDatabase db(1, open_options(dir.path()));
    FleetSimulator fleet(crash_config(), db);
    fleet.recover_state(3);

    // Double-issue half of the oracle, before resume touches anything:
    // a take that reached stable storage is permanent.
    for (const crypto::Bytes& challenge : consumed) {
      ASSERT_FALSE(db.health(challenge).has_value())
          << "consumed CRP resurrected by recovery";
    }

    const ResumeReport resume = fleet.resume_rotation();
    EXPECT_EQ(resume.keyless, 0u) << "device left keyless by the crash";
    EXPECT_EQ(resume.already_rotated + resume.finished_takes + resume.redone,
              kDevices);
    EXPECT_EQ(fleet.count_keyless(), 0u);

    // Resume completes the sweep: every device sits at the rotated end
    // state with exactly its generation-1 CRP live.
    EXPECT_EQ(db.size(), kDevices);
    for (std::size_t device = 0; device < kDevices; ++device) {
      EXPECT_EQ(fleet.oldest_generation(device), 1u);
      EXPECT_EQ(fleet.next_generation(device), 2u);
      EXPECT_FALSE(db.lookup(fleet.challenge_of(device, 0)).has_value());
      EXPECT_TRUE(db.lookup(fleet.challenge_of(device, 1)).has_value());
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(FleetCrashTest, FleetAuthenticatesAfterCrashRecoverResume) {
  // Full end-to-end at three representative cuts: mid first rotation
  // wave, a record boundary in the middle, and one byte short of clean.
  const SharedState& s = *state_;
  const std::vector<std::size_t> cuts{
      s.enroll_end + 7, s.record_ends[s.record_ends.size() / 2],
      s.image.size() - 1};
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    const io::TempDir dir("np-fleet-crash");
    stage(dir.path(), {s.image.data(), cut});
    puf::CrpDatabase db(1, open_options(dir.path()));
    FleetSimulator fleet(crash_config(), db);
    fleet.recover_state(3);
    const ResumeReport resume = fleet.resume_rotation();
    ASSERT_EQ(resume.keyless, 0u);

    const CampaignReport report = fleet.run_auth_campaign(kDevices);
    EXPECT_EQ(report.converged, kDevices);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.skipped, 0u);
  }
}

TEST_F(FleetCrashTest, RecoveredStoreNeverDoubleIssues) {
  // Drain the recovered store by keyed takes at every record boundary:
  // each served CRP must be fresh (never among the pre-crash consumed
  // set) and each challenge serves at most once.
  const SharedState& s = *state_;
  for (const std::size_t end : s.record_ends) {
    if (end < s.enroll_end) continue;
    SCOPED_TRACE("truncated to " + std::to_string(end) + " bytes");
    const std::set<crypto::Bytes> consumed = consumed_within(end);

    const io::TempDir dir("np-fleet-crash");
    stage(dir.path(), {s.image.data(), end});
    puf::CrpDatabase db(1, open_options(dir.path()));
    FleetSimulator fleet(crash_config(), db);
    fleet.recover_state(3);

    std::set<crypto::Bytes> issued;
    for (std::size_t device = 0; device < kDevices; ++device) {
      for (std::uint32_t g = 0; g < 3; ++g) {
        const puf::Challenge challenge = fleet.challenge_of(device, g);
        if (const auto crp = db.take(challenge)) {
          EXPECT_TRUE(issued.insert(crp->challenge).second)
              << "CRP double-issued in one run";
          EXPECT_EQ(consumed.count(crp->challenge), 0u)
              << "CRP consumed before the crash was issued again";
        }
      }
    }
    // Drained completely: takes + pre-crash consumptions cover every
    // insert record in the surviving prefix.
    std::size_t inserted = 0;
    for (std::size_t r = 0;
         r < s.record_ends.size() && s.record_ends[r] <= end; ++r) {
      if (s.records[r].type == puf::wal::RecordType::kInsert) ++inserted;
    }
    EXPECT_EQ(issued.size() + consumed.size(), inserted);
  }
}

}  // namespace
}  // namespace neuropuls::fleet
