// Crash-point sweep for the durable CRP store (ctest labels: chaos, io).
//
// The crash model of an append-only single-writer log is "the file ends
// early": a power cut preserves some prefix of the bytes. So the sweep
// builds one pristine store image, then re-opens a copy truncated at
// EVERY byte offset — record boundaries and mid-record alike — and
// checks the recovered state against a record-driven oracle:
//
//   * a CRP whose take record survived the crash is never re-issued
//     (the one-time-use invariant the paper's protocol rests on),
//   * a CRP whose take record was torn off IS served again — the taker
//     never saw it, durable_take blocks until the record is on disk,
//   * quarantine flags replay exactly (health records carry resulting
//     counters), and torn tails are counted, never fatal.
//
// Damage that is NOT a crash prefix — a byte flipped in the middle of
// the log, a corrupted snapshot or manifest — must fail cleanly with
// CrpStoreError instead of silently resurrecting consumed CRPs, so the
// corruption sweep flips every byte of the image and expects a throw.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "puf/crp_db.hpp"
#include "puf/crp_wal.hpp"

namespace neuropuls::puf {
namespace {

namespace io = common::io;

Crp make_crp(std::uint32_t i) {
  Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i),
                   static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x5A, 0xC3, 0x0F, 0x99};
  crp.response = {static_cast<std::uint8_t>(i * 7 + 1)};
  return crp;
}

std::uint32_t read_u32_be(const crypto::Bytes& image, std::size_t offset) {
  return (static_cast<std::uint32_t>(image[offset]) << 24) |
         (static_cast<std::uint32_t>(image[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(image[offset + 2]) << 8) |
         static_cast<std::uint32_t>(image[offset + 3]);
}

void write_file(const std::string& path, crypto::ByteView data) {
  io::File file = io::File::create_truncate(path);
  file.write_all(data);
}

/// Record-driven oracle: the expected store contents after replaying the
/// first `count` records of the pristine log. Ground truth comes from
/// the records themselves (the take record names the consumed
/// challenge), so the oracle needs no model of take()'s scan order.
struct Oracle {
  struct EntryState {
    bool quarantined = false;
  };
  std::map<crypto::Bytes, EntryState> present;
  std::set<crypto::Bytes> consumed;  // take records within the prefix

  void apply(const wal::RecordView& record) {
    const crypto::Bytes challenge(record.challenge.begin(),
                                  record.challenge.end());
    switch (record.type) {
      case wal::RecordType::kInsert:
        ASSERT_TRUE(present.emplace(challenge, EntryState{}).second);
        break;
      case wal::RecordType::kTake:
        ASSERT_EQ(present.erase(challenge), 1u);
        consumed.insert(challenge);
        break;
      case wal::RecordType::kHealth:
        present.at(challenge).quarantined = record.health.quarantined;
        break;
      case wal::RecordType::kEvict:
        ASSERT_EQ(present.erase(challenge), 1u);
        break;
    }
  }

  std::size_t quarantined_count() const {
    std::size_t n = 0;
    for (const auto& [challenge, state] : present) n += state.quarantined;
    return n;
  }
};

/// The shared pristine image: one single-shard store driven through
/// inserts, a quarantine-and-evict, a quarantine-that-stays, health
/// updates, and takes (the log ends mid-story on a take record, so the
/// truncation sweep's tail offsets are exactly the "killed mid-take()"
/// case). Built once, reused by every sweep.
class CrpCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new SharedState();
    SharedState& s = *state_;
    {
      CrpDurabilityOptions options;
      options.directory = s.source.path();
      CrpDatabase db(1, options);
      db.set_quarantine_threshold(2);
      for (std::uint32_t i = 0; i < 24; ++i) db.insert(make_crp(i));
      db.record_failure(make_crp(5).challenge);
      db.record_failure(make_crp(5).challenge);  // quarantined
      ASSERT_EQ(db.evict_quarantined(), 1u);
      db.record_failure(make_crp(9).challenge);
      db.record_failure(make_crp(9).challenge);  // quarantined, kept
      db.record_success(make_crp(11).challenge);
      for (int t = 0; t < 3; ++t) ASSERT_TRUE(db.take().has_value());
    }  // clean close: the image on disk is complete and torn-free

    s.manifest = io::read_file(wal::manifest_path(s.source.path()));
    s.image = io::read_file(wal::wal_path(s.source.path(), 0, 0));

    // Walk the framing independently of decode_wal: each record's byte
    // extent from its (pristine) length field.
    std::size_t offset = 0;
    while (offset + wal::kRecordHeaderBytes <= s.image.size()) {
      const std::uint32_t len = read_u32_be(s.image, offset);
      offset += wal::kRecordHeaderBytes + len;
      s.record_ends.push_back(offset);
    }
    ASSERT_EQ(offset, s.image.size()) << "clean image must be whole records";
    // 24 inserts + 5 health + 1 evict + 3 takes:
    ASSERT_EQ(s.record_ends.size(), 33u);

    s.records = wal::decode_wal(s.image).records;
    ASSERT_EQ(s.records.size(), s.record_ends.size());
    ASSERT_EQ(s.records.back().type, wal::RecordType::kTake);
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct SharedState {
    io::TempDir source{"np-crp-crash-src"};
    crypto::Bytes manifest;
    crypto::Bytes image;  // records reference this — keep it alive
    std::vector<std::size_t> record_ends;
    std::vector<wal::RecordView> records;
  };
  static SharedState* state_;

  /// Stages a copy of the pristine store whose WAL is `wal_image`.
  static void stage(const std::string& dir, crypto::ByteView wal_image) {
    write_file(wal::manifest_path(dir), state_->manifest);
    write_file(wal::wal_path(dir, 0, 0), wal_image);
  }

  static CrpDurabilityOptions open_options(const std::string& dir) {
    CrpDurabilityOptions options;
    options.directory = dir;
    options.durable_take = false;  // keep the drain loops at memory speed
    return options;
  }
};

CrpCrashTest::SharedState* CrpCrashTest::state_ = nullptr;

TEST_F(CrpCrashTest, TruncationAtEveryByteRecoversExactPrefix) {
  const SharedState& s = *state_;
  for (std::size_t cut = 0; cut <= s.image.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    // Records fully inside the preserved prefix; everything after is torn.
    std::size_t survivors = 0;
    while (survivors < s.record_ends.size() &&
           s.record_ends[survivors] <= cut) {
      ++survivors;
    }
    const std::size_t valid = survivors == 0 ? 0 : s.record_ends[survivors - 1];
    Oracle oracle;
    for (std::size_t r = 0; r < survivors; ++r) oracle.apply(s.records[r]);
    if (::testing::Test::HasFatalFailure()) return;

    const io::TempDir dir("np-crp-crash");
    stage(dir.path(), {s.image.data(), cut});
    CrpDatabase db(1, open_options(dir.path()));

    const CrpRecoveryStats stats = db.recovery_stats();
    EXPECT_EQ(stats.wal_records, survivors);
    EXPECT_EQ(stats.torn_bytes, cut - valid);
    EXPECT_EQ(db.size(), oracle.present.size());
    EXPECT_EQ(db.quarantined(), oracle.quarantined_count());
    for (const wal::RecordView& record : s.records) {
      if (record.type != wal::RecordType::kInsert) continue;
      const crypto::Bytes challenge(record.challenge.begin(),
                                    record.challenge.end());
      EXPECT_EQ(db.health(challenge).has_value(),
                oracle.present.count(challenge) == 1)
          << (oracle.consumed.count(challenge)
                  ? "consumed CRP resurrected"
                  : "stored CRP lost or phantom CRP appeared");
    }
  }
}

// The double-issue check, drained end to end: every take() the recovered
// store serves must come from the oracle's servable set — never a
// challenge whose take record survived the crash — and must drain that
// set completely. Sampled at every record boundary plus a mid-record
// offset each, which covers all state transitions of the byte sweep.
TEST_F(CrpCrashTest, NoDoubleIssueAcrossRecovery) {
  const SharedState& s = *state_;
  std::vector<std::size_t> cuts{0, 7};
  for (std::size_t r = 0; r < s.record_ends.size(); ++r) {
    cuts.push_back(s.record_ends[r]);       // after record r
    cuts.push_back(s.record_ends[r] - 5);   // inside record r
  }
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    std::size_t survivors = 0;
    while (survivors < s.record_ends.size() &&
           s.record_ends[survivors] <= cut) {
      ++survivors;
    }
    Oracle oracle;
    for (std::size_t r = 0; r < survivors; ++r) oracle.apply(s.records[r]);
    if (::testing::Test::HasFatalFailure()) return;
    std::set<crypto::Bytes> servable;
    for (const auto& [challenge, entry] : oracle.present) {
      if (!entry.quarantined) servable.insert(challenge);
    }

    const io::TempDir dir("np-crp-crash");
    stage(dir.path(), {s.image.data(), cut});
    CrpDatabase db(1, open_options(dir.path()));
    std::set<crypto::Bytes> issued;
    while (const auto crp = db.take()) {
      EXPECT_TRUE(issued.insert(crp->challenge).second)
          << "CRP double-issued in one run";
      EXPECT_EQ(oracle.consumed.count(crp->challenge), 0u)
          << "CRP consumed before the crash was issued again";
    }
    EXPECT_EQ(issued, servable);
  }
}

// Regression for the append-after-torn-tail hazard: recovery that
// dropped a torn tail must not keep appending to the damaged file (the
// garbage would sit mid-log and wedge the NEXT recovery). The store
// rolls forward to a fresh generation instead, so crash -> recover ->
// mutate -> reopen round trips.
TEST_F(CrpCrashTest, ReopenAfterTornTailAndNewWrites) {
  const SharedState& s = *state_;
  for (const std::size_t cut :
       {s.image.size() - 1, s.image.size() - 20, s.record_ends[4] + 3}) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    const io::TempDir dir("np-crp-crash");
    stage(dir.path(), {s.image.data(), cut});
    std::size_t recovered_size = 0;
    {
      CrpDatabase db(1, open_options(dir.path()));
      EXPECT_GT(db.recovery_stats().torn_bytes, 0u);
      recovered_size = db.size();
      db.insert(make_crp(500));
    }
    CrpDatabase db(1, open_options(dir.path()));
    EXPECT_EQ(db.recovery_stats().torn_bytes, 0u)
        << "roll-forward must leave a whole-record log";
    EXPECT_EQ(db.size(), recovered_size + 1);
    EXPECT_TRUE(db.lookup(make_crp(500).challenge).has_value());
  }
}

TEST_F(CrpCrashTest, ByteFlipAnywhereFailsCleanly) {
  const SharedState& s = *state_;
  for (std::size_t offset = 0; offset < s.image.size(); ++offset) {
    SCOPED_TRACE("flipped byte at offset " + std::to_string(offset));
    crypto::Bytes damaged = s.image;
    damaged[offset] ^= 0x01;
    const io::TempDir dir("np-crp-crash");
    stage(dir.path(), damaged);
    // All bytes are present, so this is damage-after-durability, not a
    // crash prefix; truncating at the flip could resurrect any CRP
    // consumed later in the log. The store must refuse to open.
    EXPECT_THROW(CrpDatabase(1, open_options(dir.path())),
                 wal::CrpStoreError);
  }
}

TEST_F(CrpCrashTest, SnapshotDamageFailsCleanly) {
  // A separate store whose state lives in a snapshot generation.
  const io::TempDir source("np-crp-crash-snap");
  {
    CrpDurabilityOptions options;
    options.directory = source.path();
    CrpDatabase db(1, options);
    for (std::uint32_t i = 0; i < 16; ++i) db.insert(make_crp(i));
    db.snapshot();
  }
  const std::string snap_path = wal::snapshot_path(source.path(), 0, 1);
  ASSERT_TRUE(io::file_exists(snap_path));
  const crypto::Bytes snap = io::read_file(snap_path);

  for (std::size_t offset = 0; offset < snap.size(); offset += 11) {
    SCOPED_TRACE("flipped snapshot byte at offset " + std::to_string(offset));
    crypto::Bytes damaged = snap;
    damaged[offset] ^= 0x80;
    write_file(snap_path, damaged);
    CrpDurabilityOptions options;
    options.directory = source.path();
    EXPECT_THROW(CrpDatabase(1, options), wal::CrpStoreError);
  }
  // Unlike a WAL, a snapshot is written atomically — it is never
  // legitimately truncated, so a short file is corruption too.
  write_file(snap_path, {snap.data(), snap.size() / 2});
  {
    CrpDurabilityOptions options;
    options.directory = source.path();
    EXPECT_THROW(CrpDatabase(1, options), wal::CrpStoreError);
  }
  // Restore the pristine snapshot: the store must open again (the sweep
  // damaged only the copy on disk, nothing latched).
  write_file(snap_path, snap);
  CrpDurabilityOptions options;
  options.directory = source.path();
  CrpDatabase db(1, options);
  EXPECT_EQ(db.size(), 16u);
}

}  // namespace
}  // namespace neuropuls::puf
