// Fleet simulator tests (ctest labels: fleet, concurrency).
//
// The simulator's contracts, exercised on small fleets:
//   * enrollment is a pure function of the fleet seed — the store
//     contents and the sampled uniqueness estimate are bit-identical at
//     any thread count and chunk size,
//   * the synthetic PUF honours the statistical contract the photonic
//     device sets (uniqueness ~0.5, noise tracking error_rate, real
//     mutual-auth handshakes converge),
//   * lifecycle campaigns (rotation, revocation, quarantine
//     re-enrollment) maintain the no-keyless-device invariant, and
//   * resume_rotation after a completed sweep is a no-op (idempotence).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/bytes.hpp"
#include "fleet/fleet.hpp"
#include "metrics/population.hpp"
#include "puf/crp_db.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::fleet {
namespace {

FleetConfig small_config(std::size_t devices, std::size_t generations) {
  FleetConfig config;
  config.devices = devices;
  config.generations = generations;
  config.wave_size = 64;
  return config;
}

TEST(FleetEnroll, BitIdenticalAcrossThreadCountsAndChunks) {
  common::ThreadPool one(1);
  common::ThreadPool four(4);

  FleetConfig serial_config = small_config(300, 2);
  serial_config.pool = &one;
  serial_config.enroll_chunk = 7;  // ragged chunking on purpose
  puf::CrpDatabase serial_db(1);
  FleetSimulator serial(serial_config, serial_db);
  const EnrollReport serial_report = serial.enroll();

  FleetConfig parallel_config = small_config(300, 2);
  parallel_config.pool = &four;
  parallel_config.enroll_chunk = 128;
  puf::CrpDatabase parallel_db(8);
  FleetSimulator parallel(parallel_config, parallel_db);
  const EnrollReport parallel_report = parallel.enroll();

  EXPECT_EQ(serial_db.size(), parallel_db.size());
  EXPECT_EQ(serial_report.crps, 600u);
  // Hash-sampling selects a schedule-independent device set and the
  // chunked uniqueness reduction is order-fixed: exact equality.
  EXPECT_EQ(serial_report.sampled_devices, parallel_report.sampled_devices);
  EXPECT_EQ(serial_report.uniqueness_estimate,
            parallel_report.uniqueness_estimate);
  for (std::size_t device = 0; device < 300; device += 17) {
    for (std::uint32_t g = 0; g < 2; ++g) {
      const auto a = serial_db.lookup(serial.challenge_of(device, g));
      const auto b = parallel_db.lookup(parallel.challenge_of(device, g));
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(FleetEnroll, NaiveSerialProducesTheSameStore) {
  puf::CrpDatabase batch_db(4);
  FleetSimulator batch(small_config(50, 2), batch_db);
  batch.enroll();

  puf::CrpDatabase naive_db(4);
  FleetSimulator naive(small_config(50, 2), naive_db);
  naive.enroll_naive_serial();

  ASSERT_EQ(batch_db.size(), naive_db.size());
  for (std::size_t device = 0; device < 50; ++device) {
    for (std::uint32_t g = 0; g < 2; ++g) {
      EXPECT_EQ(batch_db.lookup(batch.challenge_of(device, g)),
                naive_db.lookup(naive.challenge_of(device, g)));
    }
  }
}

TEST(SyntheticPufContract, PopulationLooksLikeAStrongPuf) {
  puf::CrpDatabase db(4);
  FleetConfig config = small_config(200, 1);
  config.uniqueness_sample_target = 200;  // sample everyone
  FleetSimulator fleet(config, db);
  const EnrollReport report = fleet.enroll();
  EXPECT_GT(report.sampled_devices, 100u);
  EXPECT_NEAR(report.uniqueness_estimate, 0.5, 0.02);

  // Noise tracks error_rate: fractional HD between a noisy reading and
  // the reference concentrates at the configured flip probability.
  SyntheticPufParams params;
  params.base_error_rate = 0.05;
  const SyntheticPuf device(params, 0xD1CE);
  std::vector<std::uint8_t> reference(params.response_bytes);
  std::vector<std::uint8_t> noisy(params.response_bytes);
  double hd = 0.0;
  const int readings = 200;
  for (int r = 0; r < readings; ++r) {
    device.evaluate_noiseless_into(7, reference.data());
    device.evaluate_into(7, static_cast<std::uint64_t>(r), noisy.data());
    int flips = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      flips += __builtin_popcount(reference[i] ^ noisy[i]);
    }
    hd += flips / (8.0 * static_cast<double>(reference.size()));
  }
  EXPECT_NEAR(hd / readings, 0.05, 0.015);
}

TEST(SyntheticPufContract, MatchesPhotonicUniquenessStatistic) {
  // The shortcut stays honest: a small population of real photonic
  // devices and a same-size synthetic population agree on the paper's
  // headline inter-device statistic (both ~0.5), measured by the same
  // chunked uniqueness metric the fleet pipeline reports.
  const puf::PhotonicPufConfig cfg = puf::small_photonic_config();
  std::vector<crypto::Bytes> photonic;
  std::vector<crypto::Bytes> synthetic;
  const puf::Challenge challenge{0xA5, 0x3C};
  for (std::uint64_t d = 0; d < 6; ++d) {
    puf::PhotonicPuf real(cfg, 99, d);
    puf::Challenge padded = challenge;
    padded.resize(real.challenge_bytes(), 0);
    photonic.push_back(real.evaluate_noiseless(padded));

    SyntheticPufParams params;
    params.response_bytes = photonic.back().size();
    const SyntheticPuf synth(params, 0x1000 + d);
    puf::Challenge synth_challenge = challenge;
    synth_challenge.resize(params.challenge_bytes, 0);
    synthetic.push_back(synth.evaluate_noiseless(synth_challenge));
  }
  const double real_u = metrics::uniqueness(photonic);
  const double synth_u = metrics::uniqueness(synthetic);
  EXPECT_NEAR(real_u, 0.5, 0.15);
  EXPECT_NEAR(synth_u, 0.5, 0.15);
  EXPECT_NEAR(real_u, synth_u, 0.2);
}

TEST(SyntheticPufContract, DriftRaisesErrorRateMonotonically) {
  puf::CrpDatabase db(1);
  FleetConfig config = small_config(4, 1);
  config.drift.laser_droop_per_day = 1e-3;
  config.puf.aging_error_gain = 0.2;
  FleetSimulator fleet(config, db);
  const double day0 = fleet.make_device(0).error_rate();
  fleet.advance_days(100);
  const double day100 = fleet.make_device(0).error_rate();
  fleet.advance_days(200);
  const double day300 = fleet.make_device(0).error_rate();
  EXPECT_GT(day100, day0);
  EXPECT_GT(day300, day100);
  EXPECT_LE(day300, 0.5);
}

TEST(FleetCampaign, AuthSessionsConvergeOnCleanChannels) {
  puf::CrpDatabase db(4);
  FleetSimulator fleet(small_config(120, 1), db);
  fleet.enroll();
  const CampaignReport report = fleet.run_auth_campaign(150);
  EXPECT_EQ(report.sessions, 150u);
  EXPECT_EQ(report.converged, 150u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_GE(report.mean_attempts, 1.0);
  EXPECT_EQ(report.poll_ticks.count(), 150u);
}

TEST(FleetCampaign, RotationSweepAdvancesEveryDevice) {
  puf::CrpDatabase db(4);
  FleetSimulator fleet(small_config(80, 1), db);
  fleet.enroll();
  const CampaignReport sweep = fleet.run_rotation_sweep();
  EXPECT_EQ(sweep.rotated, 80u);
  EXPECT_EQ(sweep.converged, 80u);
  EXPECT_EQ(db.size(), 80u);  // one live CRP per device, one retired
  EXPECT_EQ(fleet.count_keyless(), 0u);
  for (std::size_t device = 0; device < 80; ++device) {
    EXPECT_EQ(fleet.oldest_generation(device), 1u);
    EXPECT_EQ(fleet.next_generation(device), 2u);
    // The generation-0 pair is consumed — one-time use — and the
    // generation-1 replacement is live.
    EXPECT_FALSE(db.lookup(fleet.challenge_of(device, 0)).has_value());
    EXPECT_TRUE(db.lookup(fleet.challenge_of(device, 1)).has_value());
  }
}

TEST(FleetCampaign, ResumeAfterCompletedSweepIsIdempotent) {
  puf::CrpDatabase db(4);
  FleetSimulator fleet(small_config(40, 1), db);
  fleet.enroll();
  fleet.run_rotation_sweep();
  fleet.recover_state(3);
  const ResumeReport resume = fleet.resume_rotation();
  EXPECT_EQ(resume.already_rotated, 40u);
  EXPECT_EQ(resume.finished_takes, 0u);
  EXPECT_EQ(resume.redone, 0u);
  EXPECT_EQ(resume.keyless, 0u);
  EXPECT_EQ(db.size(), 40u);
}

TEST(FleetCampaign, RevocationConsumesAndExcludes) {
  puf::CrpDatabase db(4);
  FleetSimulator fleet(small_config(30, 2), db);
  fleet.enroll();
  EXPECT_EQ(fleet.run_revocation_sweep(0, 10), 20u);  // 10 devices x 2
  EXPECT_EQ(db.size(), 40u);
  for (std::size_t device = 0; device < 10; ++device) {
    EXPECT_TRUE(fleet.revoked(device));
    EXPECT_FALSE(db.lookup(fleet.challenge_of(device, 0)).has_value());
  }
  EXPECT_FALSE(fleet.revoked(10));
  // A full round-robin campaign touches every device once; the 10
  // revoked ones are skipped, never served.
  const CampaignReport report = fleet.run_auth_campaign(30);
  EXPECT_EQ(report.skipped, 10u);
  EXPECT_EQ(report.converged, 20u);
  // Revoked devices don't count as keyless — they're retired, not
  // stranded.
  EXPECT_EQ(fleet.count_keyless(), 0u);
}

TEST(FleetCampaign, QuarantineReenrollIssuesFreshChallenge) {
  puf::CrpDatabase db(4);
  db.set_quarantine_threshold(1);
  FleetSimulator fleet(small_config(20, 1), db);
  fleet.enroll();
  // Poison device 3's only CRP.
  const puf::Challenge old_challenge = fleet.challenge_of(3, 0);
  db.record_failure(old_challenge);
  ASSERT_EQ(db.quarantined(), 1u);
  EXPECT_FALSE(db.lookup(old_challenge).has_value());

  EXPECT_EQ(fleet.reenroll_quarantined(), 1u);
  EXPECT_EQ(db.quarantined(), 0u);
  // The compromised challenge is gone for good; the replacement lives
  // at a fresh generation.
  EXPECT_FALSE(db.health(old_challenge).has_value());
  EXPECT_TRUE(db.lookup(fleet.challenge_of(3, 1)).has_value());
  EXPECT_EQ(fleet.oldest_generation(3), 1u);
  EXPECT_EQ(fleet.next_generation(3), 2u);
  EXPECT_EQ(fleet.count_keyless(), 0u);

  // The re-enrolled device authenticates again.
  const CampaignReport report = fleet.run_auth_campaign(20);
  EXPECT_EQ(report.converged, 20u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST(FleetMemory, BudgetViolationFailsLoudly) {
  puf::CrpDatabase db(1);
  FleetConfig config = small_config(64, 1);
  config.memory_budget_bytes = 1;  // any real process exceeds this
  FleetSimulator fleet(config, db);
  EXPECT_THROW(fleet.enroll(), std::runtime_error);
}

TEST(FleetMemory, ProbeReadsProcSelfStatus) {
  const MemoryProbe probe = MemoryProbe::read();
  // Linux container: both fields populate, and the high-water mark is
  // at least the current RSS.
  EXPECT_GT(probe.vm_rss_bytes, 0u);
  EXPECT_GE(probe.vm_hwm_bytes, probe.vm_rss_bytes);
}

}  // namespace
}  // namespace neuropuls::fleet
