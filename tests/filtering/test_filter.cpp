// Filtering tests: the Fig. 3 monotonicity properties (reliability rises,
// aliasing entropy falls, retention falls as the threshold grows), the
// trade-off window, and the photocurrent-amplitude adaptation.
#include <gtest/gtest.h>

#include "filtering/filter.hpp"

namespace neuropuls::filtering {
namespace {

AnalogPopulation ro_population() {
  puf::RoPufConfig cfg;
  cfg.oscillators = 32;
  // Process variation dominates but layout systematics remain visible:
  // the regime where the Fig. 3 trade-off window exists.
  cfg.layout_sigma_hz = 1.5e5;
  cfg.process_sigma_hz = 2.5e5;
  cfg.noise_sigma_hz = 5.0e4;
  return measure_ro_population(cfg, 24, all_ro_pairs(32, 200), 15, 5000);
}

TEST(FilterSweep, RejectsEmptyInput) {
  EXPECT_THROW(sweep_lower_threshold(AnalogPopulation{}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(measure_ro_population(puf::RoPufConfig{}, 0, {{0, 1}}, 3, 1),
               std::invalid_argument);
  EXPECT_THROW(measure_photonic_population(puf::small_photonic_config(), 2,
                                           puf::Challenge(2, 0), 0, 1),
               std::invalid_argument);
}

TEST(FilterSweep, Fig3MonotonicityOnRoPuf) {
  const AnalogPopulation pop = ro_population();
  std::vector<double> thresholds;
  for (int t = 0; t <= 200; t += 10) thresholds.push_back(t);
  const auto sweep = sweep_lower_threshold(pop, thresholds);

  // Threshold 0 retains everything.
  EXPECT_DOUBLE_EQ(sweep.front().retained_fraction, 1.0);
  // Retention decreases monotonically.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].retained_fraction, sweep[i - 1].retained_fraction + 1e-12);
  }
  // Compare the unfiltered baseline to the strongest filter that still
  // keeps a statistically meaningful share (>= 10%) of CRPs — the tail
  // points keep a handful of slots and their entropy estimate is noise.
  const auto& strong = *[&] {
    const FilterSweepPoint* best = &sweep.front();
    for (const auto& p : sweep) {
      if (p.retained_fraction >= 0.10) best = &p;
    }
    return best;
  }();
  // Fig. 3: reliability rises with threshold...
  EXPECT_GT(strong.reliability, sweep.front().reliability);
  // ...and aliasing entropy decreases (extreme margins are layout-driven).
  EXPECT_LT(strong.aliasing_entropy, sweep.front().aliasing_entropy);
}

TEST(FilterSweep, TradeoffWindowExists) {
  const AnalogPopulation pop = ro_population();
  std::vector<double> thresholds;
  for (int t = 0; t <= 150; t += 5) thresholds.push_back(t);
  const auto sweep = sweep_lower_threshold(pop, thresholds);
  // The shaded Fig. 3 region: good reliability AND good entropy.
  const auto window = tradeoff_window(sweep, 0.97, 0.79);
  EXPECT_FALSE(window.empty());
  for (std::size_t i : window) {
    EXPECT_GE(sweep[i].reliability, 0.97);
    EXPECT_GE(sweep[i].aliasing_entropy, 0.79);
    EXPECT_GT(sweep[i].retained_fraction, 0.0);
  }
}

TEST(OnlineMask, WindowSemantics) {
  const std::vector<double> margins = {-5.0, 0.5, 3.0, -100.0, 7.0};
  const auto mask = online_mask(margins, 1.0, 50.0);
  const std::vector<bool> expected = {true, false, true, false, true};
  EXPECT_EQ(mask, expected);
  // No upper bound.
  const auto open_mask = online_mask(margins, 1.0);
  EXPECT_TRUE(open_mask[3]);
}

TEST(OnlineMask, FilteredBitsFlipLess) {
  // Retained (large-margin) RO CRPs must show a lower measured flip rate
  // than rejected ones on a fresh device.
  puf::RoPufConfig cfg;
  cfg.oscillators = 32;
  cfg.noise_sigma_hz = 8.0e4;  // noisy enough to see flips
  puf::RoPuf device(cfg, 999);
  const auto pairs = all_ro_pairs(32, 150);

  std::vector<double> margins;
  for (const auto& p : pairs) {
    margins.push_back(static_cast<double>(device.expected_count(p.i) -
                                          device.expected_count(p.j)));
  }
  const auto mask = online_mask(margins, 15.0);

  double kept_flips = 0.0, kept_n = 0.0, dropped_flips = 0.0, dropped_n = 0.0;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto c = puf::encode_ro_challenge(pairs[p].i, pairs[p].j);
    const auto ref = device.evaluate_noiseless(c);
    for (int r = 0; r < 20; ++r) {
      const bool flip = device.evaluate(c) != ref;
      if (mask[p]) {
        kept_flips += flip;
        kept_n += 1.0;
      } else {
        dropped_flips += flip;
        dropped_n += 1.0;
      }
    }
  }
  ASSERT_GT(kept_n, 0.0);
  ASSERT_GT(dropped_n, 0.0);
  EXPECT_LT(kept_flips / kept_n, dropped_flips / dropped_n);
}

TEST(PhotonicAdaptation, AmplitudeThresholdImprovesReliability) {
  // The NEUROPULS adaptation: threshold on |photocurrent difference|.
  auto cfg = puf::small_photonic_config();
  const puf::Challenge challenge(2, 0x6B);
  const auto pop = measure_photonic_population(cfg, 6, challenge, 8, 777);
  ASSERT_EQ(pop.devices, 6u);
  ASSERT_FALSE(pop.crps.empty());

  // Find the margin scale, then sweep around it.
  double max_margin = 0.0;
  for (const auto& crp : pop.crps) {
    for (double m : crp.margins) max_margin = std::max(max_margin, std::fabs(m));
  }
  std::vector<double> thresholds;
  for (int i = 0; i <= 10; ++i) thresholds.push_back(max_margin * i / 20.0);
  const auto sweep = sweep_lower_threshold(pop, thresholds);

  EXPECT_DOUBLE_EQ(sweep.front().retained_fraction, 1.0);
  // Some filtered point beats the unfiltered reliability (or reliability
  // is already saturated at 1).
  double best = 0.0;
  for (const auto& p : sweep) best = std::max(best, p.reliability);
  EXPECT_GE(best, sweep.front().reliability);
  // Retention shrinks.
  EXPECT_LT(sweep.back().retained_fraction, 1.0);
}

TEST(EvaluateWindow, UpperBoundRemovesAliasedCrps) {
  // With a strong layout component, the extreme margins are the aliased
  // ones: adding an upper bound must RAISE the retained entropy relative
  // to a lower-bound-only filter at the same floor.
  puf::RoPufConfig cfg;
  cfg.oscillators = 32;
  cfg.layout_sigma_hz = 3.0e5;
  cfg.process_sigma_hz = 2.0e5;
  cfg.noise_sigma_hz = 5.0e4;
  const auto pop =
      measure_ro_population(cfg, 24, all_ro_pairs(32, 200), 15, 6000);

  const double floor = 15.0;
  const auto open_ended = evaluate_window(
      pop, floor, std::numeric_limits<double>::infinity());
  const auto capped = evaluate_window(pop, floor, 60.0);
  EXPECT_GT(capped.aliasing_entropy, open_ended.aliasing_entropy);
  EXPECT_LT(capped.retained_fraction, open_ended.retained_fraction);
  EXPECT_GE(capped.reliability, 0.99);
}

TEST(EvaluateWindow, DegenerateAndInvalidInputs) {
  puf::RoPufConfig cfg;
  cfg.oscillators = 8;
  const auto pop = measure_ro_population(cfg, 4, all_ro_pairs(8), 3, 1);
  // Empty window retains nothing and reports neutral stats.
  const auto none = evaluate_window(pop, 1e9, 2e9);
  EXPECT_DOUBLE_EQ(none.retained_fraction, 0.0);
  EXPECT_THROW(evaluate_window(pop, 10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(evaluate_window(AnalogPopulation{}, 0.0, 1.0),
               std::invalid_argument);
}

TEST(EvaluateWindow, MatchesSweepWhenUnbounded) {
  puf::RoPufConfig cfg;
  cfg.oscillators = 16;
  const auto pop = measure_ro_population(cfg, 6, all_ro_pairs(16, 60), 5, 2);
  const auto sweep = sweep_lower_threshold(pop, {20.0});
  const auto window = evaluate_window(
      pop, 20.0, std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(window.retained_fraction, sweep[0].retained_fraction);
  EXPECT_DOUBLE_EQ(window.reliability, sweep[0].reliability);
  EXPECT_DOUBLE_EQ(window.aliasing_entropy, sweep[0].aliasing_entropy);
}

TEST(AllRoPairs, CountsAndCaps) {
  EXPECT_EQ(all_ro_pairs(5).size(), 10u);
  EXPECT_EQ(all_ro_pairs(100, 7).size(), 7u);
  EXPECT_TRUE(all_ro_pairs(1).empty());
}

}  // namespace
}  // namespace neuropuls::filtering
