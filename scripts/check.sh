#!/usr/bin/env bash
# Full local verification matrix: plain, ASan, and UBSan builds with the
# complete test suite (which includes the ctlint secret-hygiene pass and
# its self-test), all with warnings-as-errors. This is the command to run
# before pushing; CI runs the same matrix.
#
# Usage:
#   scripts/check.sh            # plain + address + undefined
#   scripts/check.sh plain      # one configuration only
#   scripts/check.sh address
#   scripts/check.sh undefined
#
# Build trees land in build-check-<config>/ (gitignored via build-*/).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain address undefined)
fi

run_config() {
  local config="$1"
  local build_dir="build-check-${config}"
  local sanitize=""
  if [ "${config}" != "plain" ]; then
    sanitize="${config}"
  fi

  echo "==> [${config}] configure (${build_dir}, NEUROPULS_SANITIZE='${sanitize}', NEUROPULS_WERROR=ON)"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNEUROPULS_SANITIZE="${sanitize}" \
    -DNEUROPULS_WERROR=ON \
    > "${build_dir}.configure.log" 2>&1 || {
      tail -n 40 "${build_dir}.configure.log"; return 1; }

  echo "==> [${config}] build"
  cmake --build "${build_dir}" -j "${JOBS}" \
    > "${build_dir}.build.log" 2>&1 || {
      tail -n 40 "${build_dir}.build.log"; return 1; }

  echo "==> [${config}] ctest (unit + property + ctlint_src + ctlint_selftest)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

for config in "${CONFIGS[@]}"; do
  case "${config}" in
    plain|address|undefined) run_config "${config}" ;;
    *)
      echo "unknown config '${config}' (want plain, address, or undefined)" >&2
      exit 2
      ;;
  esac
done

# Standalone ctlint invocation against the tree (redundant with the ctest
# case, but handy when iterating on lint annotations without a rebuild).
LAST_BUILD="build-check-${CONFIGS[${#CONFIGS[@]}-1]}"
echo "==> ctlint source pass (standalone)"
"${LAST_BUILD}/tools/ctlint/ctlint" --baseline tools/ctlint/baseline.txt src

echo "==> all checks passed"
