#!/usr/bin/env bash
# Full local verification matrix: plain, ASan, UBSan, and -march=native
# builds with the complete test suite (which includes the ctlint
# secret-hygiene pass and its self-test), all with warnings-as-errors,
# plus a benchmark smoke run that emits google-benchmark JSON, validates
# it with scripts/bench_regress.py --check-schema, and diffs it against
# the committed BENCH_baseline.json. This is the command to run before
# pushing; CI runs the same matrix.
#
# Usage:
#   scripts/check.sh            # plain + address + undefined + native
#   scripts/check.sh plain      # one configuration only
#   scripts/check.sh address
#   scripts/check.sh undefined
#   scripts/check.sh native     # -DNEUROPULS_NATIVE=ON (lane kernels get
#                               # the host ISA; ctest re-asserts lane/scalar
#                               # bit-identity under FMA contraction)
#   scripts/check.sh chaos      # fault-injection sweep only: runs the
#                               # ctest label `chaos` (tests/chaos) under
#                               # BOTH ASan and UBSan — held-frame queues,
#                               # retry/backoff loops, and corrupted-blob
#                               # parsing are exactly where lifetime and UB
#                               # bugs would hide
#   scripts/check.sh tsan       # concurrency sweep only: runs the ctest
#                               # label `concurrency` (sharded CrpDatabase
#                               # stress, SessionEngine determinism, reactor
#                               # alloc/park-wake suites) under
#                               # ThreadSanitizer — the shard locks and the
#                               # engine's schedulers are the only
#                               # cross-thread surfaces in the stack
#   scripts/check.sh reactor    # reactor sweep: one ThreadSanitizer build,
#                               # then ctest -L concurrency under
#                               # NEUROPULS_THREADS=1 (serial fallback /
#                               # degenerate reactor) and =4 (real steal and
#                               # park/wake traffic) — the two widths where
#                               # scheduler bugs live
#   scripts/check.sh durability # durable-store sweep: runs the ctest
#                               # label `io` (POSIX io layer, durable CRP
#                               # store round trips, crash-point
#                               # truncation/corruption sweeps) under
#                               # AddressSanitizer — recovery replays
#                               # attacker-shaped byte images, exactly
#                               # where lifetime bugs would hide
#   scripts/check.sh abuse      # abuse-resistance sweep: runs the ctest
#                               # label `chaos` (flood storms, replay and
#                               # half-open exhaustion, park/wake churn)
#                               # under AddressSanitizer — hostile-load
#                               # shedding and eviction juggle session
#                               # lifetimes, exactly where use-after-free
#                               # bugs would hide
#   scripts/check.sh fleet      # fleet-scale sweep: runs the ctest label
#                               # `fleet` (streaming estimators, chunked
#                               # uniqueness, FleetSimulator campaigns,
#                               # crash/resume rotation) under
#                               # AddressSanitizer — bulk enrollment
#                               # staging and per-wave fixture reuse are
#                               # exactly where buffer-lifetime bugs would
#                               # hide
#   scripts/check.sh lint       # static-analysis flavor: ctlint (all
#                               # passes, empty-baseline gate) + fixture
#                               # self-test, bench_regress schema
#                               # self-check, clang-tidy over the exported
#                               # compile database, and a Clang
#                               # -Wthread-safety -Werror build of the
#                               # whole tree. The clang-tidy and Clang
#                               # steps skip LOUDLY when no clang is on
#                               # PATH (the GCC-only container); ctlint
#                               # and the schema check always gate
#
#   scripts/check.sh --list-flavors   # print the flavor names and exit
#
# Environment:
#   NEUROPULS_BENCH_THRESHOLD   allowed fractional throughput drop vs
#                               BENCH_baseline.json in the smoke compare
#                               (default 0.5 — smoke runs are short and
#                               noisy; use scripts/bench_regress.py with
#                               its default 0.10 threshold on full-length
#                               runs for real regression gating)
#
# Build trees and their logs land under build-check/ (gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Flavor catalog, one per line: name, then a short "what it sweeps".
# Kept as data so --list-flavors and the unknown-config error stay in
# sync with the dispatch below by construction.
FLAVORS=(
  "plain       full suite, no sanitizer"
  "address     full suite under AddressSanitizer"
  "undefined   full suite under UBSan"
  "native      full suite with -DNEUROPULS_NATIVE=ON (host-ISA lane kernels)"
  "chaos       ctest -L chaos under ASan AND UBSan (fault injection)"
  "tsan        ctest -L concurrency under ThreadSanitizer"
  "reactor     ctest -L concurrency under TSan at NEUROPULS_THREADS=1 and =4"
  "durability  ctest -L io under ASan (durable CRP store, crash sweeps)"
  "abuse       ctest -L chaos under ASan (flood storms, admission control)"
  "fleet       ctest -L fleet under ASan (fleet simulator, streaming metrics)"
  "lint        ctlint + fixtures + bench schema + clang-tidy/thread-safety"
)

list_flavors() {
  echo "check.sh flavors (default run: plain address undefined native lint):"
  local entry
  for entry in "${FLAVORS[@]}"; do
    echo "  ${entry}"
  done
}

for arg in "$@"; do
  if [ "${arg}" = "--list-flavors" ] || [ "${arg}" = "-l" ]; then
    list_flavors
    exit 0
  fi
done

CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain address undefined native lint)
fi

mkdir -p build-check

run_config() {
  local config="$1"
  local label="${2:-}"   # optional ctest -L label (chaos/tsan flavors)
  local build_dir="build-check/${config}${label:+-${label}}"
  local sanitize=""
  local native="OFF"
  if [ "${config}" = "native" ]; then
    native="ON"
  elif [ "${config}" != "plain" ]; then
    sanitize="${config}"
  fi

  echo "==> [${config}] configure (${build_dir}, NEUROPULS_SANITIZE='${sanitize}', NEUROPULS_NATIVE=${native}, NEUROPULS_WERROR=ON)"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNEUROPULS_SANITIZE="${sanitize}" \
    -DNEUROPULS_NATIVE="${native}" \
    -DNEUROPULS_WERROR=ON \
    > "${build_dir}.configure.log" 2>&1 || {
      tail -n 40 "${build_dir}.configure.log"; return 1; }

  echo "==> [${config}] build"
  cmake --build "${build_dir}" -j "${JOBS}" \
    > "${build_dir}.build.log" 2>&1 || {
      tail -n 40 "${build_dir}.build.log"; return 1; }

  if [ -n "${label}" ]; then
    echo "==> [${config}] ctest -L ${label}"
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L "${label}"
  else
    echo "==> [${config}] ctest (unit + property + ctlint_src + ctlint_selftest)"
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  fi
}

# The lint flavor: every static gate in one place. Builds only the
# ctlint host tool (plus the compile database from the configure step),
# so it is cheap enough to run on every invocation alongside the full
# matrix.
run_lint_flavor() {
  local build_dir="build-check/lint"

  echo "==> [lint] configure (${build_dir})"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNEUROPULS_WERROR=ON \
    > "${build_dir}.configure.log" 2>&1 || {
      tail -n 40 "${build_dir}.configure.log"; return 1; }

  echo "==> [lint] build ctlint"
  cmake --build "${build_dir}" -j "${JOBS}" --target ctlint \
    > "${build_dir}.build.log" 2>&1 || {
      tail -n 40 "${build_dir}.build.log"; return 1; }

  echo "==> [lint] ctlint source pass (secret + concurrency rules, empty-baseline gate)"
  "${build_dir}/tools/ctlint/ctlint" \
    --baseline tools/ctlint/baseline.txt src

  echo "==> [lint] ctlint fixture self-test"
  "${build_dir}/tools/ctlint/ctlint" --self-test tools/ctlint/fixtures

  echo "==> [lint] bench_regress schema self-check (BENCH_baseline.json)"
  python3 scripts/bench_regress.py --check-schema BENCH_baseline.json

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [lint] clang-tidy (compile database: ${build_dir})"
    # shellcheck disable=SC2046
    clang-tidy -p "${build_dir}" --quiet \
      $(find src -name '*.cpp' | sort)
  else
    echo "==> [lint] SKIPPED clang-tidy: not on PATH (install LLVM to enable)"
  fi

  if command -v clang++ >/dev/null 2>&1; then
    echo "==> [lint] Clang -Wthread-safety -Werror build"
    local clang_dir="build-check/lint-clang"
    cmake -B "${clang_dir}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DNEUROPULS_WERROR=ON \
      -DNEUROPULS_THREAD_SAFETY=ON \
      > "${clang_dir}.configure.log" 2>&1 || {
        tail -n 40 "${clang_dir}.configure.log"; return 1; }
    cmake --build "${clang_dir}" -j "${JOBS}" \
      > "${clang_dir}.build.log" 2>&1 || {
        tail -n 40 "${clang_dir}.build.log"; return 1; }
    echo "==> [lint] ctest (negative-compile harness + full suite under Clang)"
    ctest --test-dir "${clang_dir}" --output-on-failure -j "${JOBS}"
  else
    echo "==> [lint] SKIPPED Clang thread-safety build: clang++ not on PATH"
    echo "           (GCC compiles the NP_ annotations as no-ops; the"
    echo "            capability analysis needs Clang)"
  fi
}

FULL_CONFIGS=()
for config in "${CONFIGS[@]}"; do
  case "${config}" in
    plain|address|undefined|native)
      run_config "${config}"
      FULL_CONFIGS+=("${config}")
      ;;
    chaos)
      run_config address chaos
      run_config undefined chaos
      ;;
    tsan)
      run_config thread concurrency
      ;;
    durability)
      run_config address io
      ;;
    abuse)
      run_config address chaos
      ;;
    fleet)
      run_config address fleet
      ;;
    reactor)
      # One TSan build tree, swept at two pool widths: the second
      # run_config call reuses the build and only re-runs ctest.
      NEUROPULS_THREADS=1 run_config thread concurrency
      NEUROPULS_THREADS=4 run_config thread concurrency
      ;;
    lint)
      run_lint_flavor
      ;;
    *)
      echo "unknown config '${config}'" >&2
      list_flavors >&2
      exit 2
      ;;
  esac
done

# The bench smoke + standalone ctlint tail needs a full-matrix build tree;
# a chaos-/tsan-only invocation has none, and that is fine — those are the
# targeted sanitizer sweeps, not the pre-push gate.
if [ ${#FULL_CONFIGS[@]} -eq 0 ]; then
  echo "==> flavor-only run: skipping bench smoke + standalone ctlint"
  echo "==> all checks passed"
  exit 0
fi

LAST_BUILD="build-check/${FULL_CONFIGS[${#FULL_CONFIGS[@]}-1]}"

# Benchmark smoke pass: run the hot-path benchmark binaries just long
# enough to emit JSON, validate the schema, and diff throughput against
# the committed pre-PR baseline. The threshold is deliberately loose
# (smoke iterations are noisy); it catches order-of-magnitude cliffs, not
# single-digit drift.
BENCH_SMOKE_DIR="${LAST_BUILD}/bench-smoke"
BENCH_SMOKE_FILTER='PhotonicNoiselessBatch|PhotonicEvaluateBatch|VerifierModelSweep|ServerSessions|CrpStoreMixedOps|CrpStoreGroupCommit|CrpStoreFsyncPerOp|CrpStoreRecovery'
mkdir -p "${BENCH_SMOKE_DIR}"
for bench in bench_puf_quality bench_system_level bench_server bench_crp_store_recovery; do
  bench_bin="${LAST_BUILD}/bench/${bench}"
  if [ ! -x "${bench_bin}" ]; then
    echo "==> bench smoke: ${bench_bin} missing" >&2
    exit 1
  fi
  echo "==> bench smoke: ${bench}"
  "${bench_bin}" \
    --benchmark_min_time=0.01 \
    --benchmark_filter="${BENCH_SMOKE_FILTER}" \
    --benchmark_out="${BENCH_SMOKE_DIR}/BENCH_${bench}.json" \
    --benchmark_out_format=json \
    > /dev/null
done

echo "==> bench smoke: schema check"
python3 scripts/bench_regress.py --check-schema \
  "${BENCH_SMOKE_DIR}"/BENCH_*.json

echo "==> bench smoke: merge + compare vs BENCH_baseline.json"
python3 scripts/bench_regress.py --merge "${BENCH_SMOKE_DIR}/BENCH_smoke.json" \
  "${BENCH_SMOKE_DIR}/BENCH_bench_puf_quality.json" \
  "${BENCH_SMOKE_DIR}/BENCH_bench_system_level.json" \
  "${BENCH_SMOKE_DIR}/BENCH_bench_server.json" \
  "${BENCH_SMOKE_DIR}/BENCH_bench_crp_store_recovery.json"
# --allow-missing: the smoke filter deliberately runs a subset of the
# baseline's cases; a full-length run should compare WITHOUT it so a
# vanished case fails loudly.
python3 scripts/bench_regress.py \
  --threshold "${NEUROPULS_BENCH_THRESHOLD:-0.5}" \
  --allow-missing \
  BENCH_baseline.json "${BENCH_SMOKE_DIR}/BENCH_smoke.json"

# Standalone ctlint invocation against the tree (redundant with the ctest
# case, but handy when iterating on lint annotations without a rebuild).
echo "==> ctlint source pass (standalone)"
"${LAST_BUILD}/tools/ctlint/ctlint" --baseline tools/ctlint/baseline.txt src

echo "==> all checks passed"
