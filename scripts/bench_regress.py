#!/usr/bin/env python3
"""Diff two google-benchmark JSON runs against a throughput threshold.

Usage:
  bench_regress.py OLD.json NEW.json [--threshold 0.10] [--allow-missing]
      Compares benchmarks present in both files by name. A benchmark
      regresses when its new throughput falls more than THRESHOLD
      (fraction) below the old one; any regression makes the exit
      status nonzero. Throughput is items_per_second when the benchmark
      reports it, else 1 / real_time.

      A baseline benchmark that is absent from NEW.json is an error: a
      silently vanished case (renamed, deleted, filtered out) would
      otherwise read as "no regression" forever. Pass --allow-missing
      when the new run is intentionally a subset of the baseline (e.g.
      one binary's smoke run against the merged baseline).

  bench_regress.py --check-schema FILE [FILE...]
      Validates that each file parses as google-benchmark JSON output
      (a `context` object and a non-empty `benchmarks` array whose
      entries carry a name and a timing). Exit nonzero on the first
      malformed file.

  bench_regress.py --merge OUT.json IN.json [IN.json...]
      Concatenates the `benchmarks` arrays of several runs into one
      file (context taken from the first input) so per-binary smoke
      runs can be compared against one committed baseline.

Only the Python standard library is used. Duplicate benchmark names
within one file (e.g. an Arg(1) registered twice because
hardware_threads() == 1) are aggregated by taking the best observed
throughput.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_regress: cannot read {path}: {exc}")


def schema_errors(doc: dict, path: str) -> list[str]:
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not a JSON object"]
    if not isinstance(doc.get("context"), dict):
        errors.append(f"{path}: missing `context` object")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        errors.append(f"{path}: missing or empty `benchmarks` array")
        return errors
    for i, bench in enumerate(benches):
        if not isinstance(bench, dict) or "name" not in bench:
            errors.append(f"{path}: benchmarks[{i}] has no name")
            continue
        if not any(
            isinstance(bench.get(key), (int, float))
            for key in ("items_per_second", "real_time", "cpu_time")
        ):
            errors.append(
                f"{path}: benchmarks[{i}] ({bench['name']}) has no timing"
            )
    return errors


def throughput(bench: dict) -> float | None:
    """Challenges/sec when reported, else inverse wall time; None if absent."""
    items = bench.get("items_per_second")
    if isinstance(items, (int, float)) and items > 0:
        return float(items)
    real = bench.get("real_time")
    if isinstance(real, (int, float)) and real > 0:
        return 1.0 / float(real)
    return None


def best_by_name(doc: dict) -> dict[str, float]:
    table: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate runs (mean/median/stddev rows) out; compare raw
        # iterations only, and fold duplicate names to their best run.
        if bench.get("run_type") == "aggregate":
            continue
        rate = throughput(bench)
        if rate is None:
            continue
        name = bench["name"]
        if name not in table or rate > table[name]:
            table[name] = rate
    return table


def cmd_check_schema(paths: list[str]) -> int:
    status = 0
    for path in paths:
        errors = schema_errors(load(path), path)
        if errors:
            for line in errors:
                print(line, file=sys.stderr)
            status = 1
        else:
            print(f"{path}: OK")
    return status


def cmd_merge(out_path: str, in_paths: list[str]) -> int:
    # Case names already in OUT (when it exists) — merging is how new
    # benchmarks enter the committed baseline, so the newly-added names
    # are reported rather than slipping in silently.
    previous: set[str] = set()
    try:
        with open(out_path, "r", encoding="utf-8") as fh:
            prior = json.load(fh)
        if isinstance(prior, dict):
            previous = {
                bench["name"]
                for bench in prior.get("benchmarks", [])
                if isinstance(bench, dict) and "name" in bench
            }
    except (OSError, json.JSONDecodeError):
        pass  # fresh output file: every case counts as newly added

    merged: dict = {}
    benches: list[dict] = []
    for path in in_paths:
        doc = load(path)
        errors = schema_errors(doc, path)
        if errors:
            for line in errors:
                print(line, file=sys.stderr)
            return 1
        if not merged:
            merged = {"context": doc["context"]}
        benches.extend(doc["benchmarks"])
    merged["benchmarks"] = benches
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(f"{out_path}: merged {len(benches)} benchmarks from "
          f"{len(in_paths)} files")
    added = sorted(
        {b["name"] for b in benches if "name" in b} - previous
    )
    print(f"{out_path}: {len(added)} newly added case(s)"
          + (": " + ", ".join(added) if added else ""))
    return 0


def cmd_compare(old_path: str, new_path: str, threshold: float,
                allow_missing: bool) -> int:
    old = best_by_name(load(old_path))
    new = best_by_name(load(new_path))
    common = sorted(set(old) & set(new))
    if not common:
        print("bench_regress: no common benchmarks to compare",
              file=sys.stderr)
        return 1
    regressions = 0
    width = max(len(name) for name in common)
    for name in common:
        ratio = new[name] / old[name]
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            regressions += 1
        print(f"{name:<{width}}  old {old[name]:>14.1f}/s  "
              f"new {new[name]:>14.1f}/s  x{ratio:.3f}  {verdict}")
    only_old = sorted(set(old) - set(new))
    for name in only_old:
        if allow_missing:
            print(f"{name}: missing from {new_path} (allowed)")
        else:
            print(f"bench_regress: baseline case `{name}` is missing from "
                  f"{new_path} — it was renamed, deleted, or filtered out "
                  f"of the run. Restore the case, refresh the baseline, or "
                  f"pass --allow-missing if this run is intentionally a "
                  f"subset.", file=sys.stderr)
    if only_old and not allow_missing:
        print(f"bench_regress: {len(only_old)} baseline case(s) "
              f"disappeared", file=sys.stderr)
        return 1
    if regressions:
        print(f"bench_regress: {regressions} benchmark(s) regressed more "
              f"than {threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench_regress: {len(common)} benchmark(s) within "
          f"{threshold:.0%} of {old_path}")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("files", nargs="*", help="OLD.json NEW.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional throughput drop "
                             "(default 0.10)")
    parser.add_argument("--check-schema", action="store_true",
                        help="validate files as google-benchmark JSON")
    parser.add_argument("--merge", metavar="OUT",
                        help="merge input files' benchmarks into OUT")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate baseline benchmarks absent from "
                             "NEW.json (intentional-subset runs)")
    args = parser.parse_args(argv)

    if args.check_schema:
        if not args.files:
            parser.error("--check-schema needs at least one file")
        return cmd_check_schema(args.files)
    if args.merge:
        if not args.files:
            parser.error("--merge needs at least one input file")
        return cmd_merge(args.merge, args.files)
    if len(args.files) != 2:
        parser.error("compare mode needs exactly OLD.json NEW.json")
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")
    return cmd_compare(args.files[0], args.files[1], args.threshold,
                       args.allow_missing)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
