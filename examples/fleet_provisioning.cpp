// Fleet provisioning: manufacture a wafer of PUF devices, screen their
// population quality, apply the §II-B margin filter, and provision each
// device for HSC-IoT authentication.
//
//   $ ./fleet_provisioning
//
// This is the manufacturer-side workflow the paper implies: per-wafer
// statistics decide whether the process corner is usable; per-device
// enrollment produces the CRP and helper data shipped with each unit.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/key_manager.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "filtering/filter.hpp"
#include "metrics/population.hpp"
#include "puf/photonic_puf.hpp"

using namespace neuropuls;

int main() {
  std::printf("== Fleet provisioning (one wafer, 12 dies) ==\n\n");
  auto config = puf::small_photonic_config();
  config.challenge_bits = 32;
  constexpr std::uint64_t kWafer = 77'001;
  constexpr std::size_t kDies = 12;

  // -- wafer-level screening ---------------------------------------------------
  crypto::ChaChaDrbg rng(crypto::bytes_of("screening"));
  const puf::Challenge probe = rng.generate(4);
  std::vector<crypto::Bytes> responses;
  std::vector<std::vector<crypto::Bytes>> rereads;
  std::vector<std::unique_ptr<puf::PhotonicPuf>> dies;
  for (std::size_t d = 0; d < kDies; ++d) {
    dies.push_back(std::make_unique<puf::PhotonicPuf>(config, kWafer, d));
    responses.push_back(dies.back()->evaluate_noiseless(probe));
    std::vector<crypto::Bytes> reads;
    for (int r = 0; r < 5; ++r) reads.push_back(dies.back()->evaluate(probe));
    rereads.push_back(std::move(reads));
  }
  const auto report = metrics::population_report(responses, rereads);
  std::printf("wafer statistics:\n");
  std::printf("  uniformity     %.3f   (target ~0.5)\n", report.uniformity_mean);
  std::printf("  uniqueness     %.3f   (target ~0.5)\n", report.uniqueness);
  std::printf("  reliability    %.3f   (target ~1.0)\n", report.reliability_mean);
  std::printf("  aliasing H     %.3f   (target ~1.0)\n",
              report.aliasing_entropy_mean);
  std::printf("  min-entropy    %.3f bit/bit\n\n", report.min_entropy);
  const bool wafer_ok = report.uniqueness > 0.4 && report.reliability_mean > 0.9;
  std::printf("wafer %s\n\n", wafer_ok ? "ACCEPTED" : "REJECTED");
  if (!wafer_ok) return 1;

  // -- §II-B margin filtering on one die ---------------------------------------
  const auto pop =
      filtering::measure_photonic_population(config, 6, probe, 7, kWafer);
  double max_margin = 0.0;
  for (const auto& crp : pop.crps) {
    for (double m : crp.margins) max_margin = std::max(max_margin, std::fabs(m));
  }
  std::vector<double> thresholds;
  for (int i = 0; i <= 8; ++i) thresholds.push_back(max_margin * i / 24.0);
  const auto sweep = filtering::sweep_lower_threshold(pop, thresholds);
  const auto window = filtering::tradeoff_window(sweep, 0.995, 0.75);
  if (window.empty()) {
    std::printf("margin filter: no trade-off window at this corner\n");
  } else {
    const auto& pick = sweep[window.front()];
    std::printf("margin filter: |dI| >= %.2f uA keeps %.0f%% of CRPs at "
                "reliability %.4f\n\n",
                pick.threshold * 1e6, pick.retained_fraction * 100.0,
                pick.reliability);
  }

  // -- per-device provisioning ---------------------------------------------------
  std::printf("provisioning %zu devices:\n", kDies);
  std::size_t provisioned_ok = 0;
  for (std::size_t d = 0; d < kDies; ++d) {
    crypto::ChaChaDrbg device_rng(
        crypto::concat({crypto::bytes_of("provision"),
                        crypto::Bytes{static_cast<std::uint8_t>(d)}}));
    // Key enrollment (helper data ships with the device).
    core::KeyManager keys(*dies[d]);
    const auto record = keys.enroll(device_rng);
    const auto derived = keys.derive(record);
    // First authentication CRP (stored at the verifier).
    const auto provisioned = core::provision(*dies[d], device_rng);
    const crypto::Bytes firmware = crypto::bytes_of("fw-1.0");
    core::AuthDevice device(*dies[d], provisioned.device_crp, firmware);
    core::AuthVerifier verifier(provisioned.verifier_secret,
                                crypto::Sha256::hash(firmware),
                                dies[d]->challenge_bytes());
    net::DuplexChannel channel;
    const bool auth_ok =
        core::run_auth_session(verifier, device, channel, 1, d + 1);
    const bool ok = derived.has_value() && auth_ok;
    provisioned_ok += ok;
    std::printf("  die %2zu: key %s, first auth %s\n", d,
                derived ? "ok" : "FAILED", auth_ok ? "ok" : "FAILED");
  }
  std::printf("\n%zu/%zu devices provisioned\n", provisioned_ok, kDies);
  return provisioned_ok == kDies ? 0 : 1;
}
