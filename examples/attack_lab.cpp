// Attack lab: run the §IV attack suite against electronic and photonic
// targets and print a security scorecard.
//
//   $ ./attack_lab
//
// Demonstrates the attacker-facing API: ML modelling, power analysis,
// protocol manipulation (replay / tamper / desync), and the guessing
// economics of the EKE-protected CRP.
#include <cstdio>
#include <memory>

#include "attacks/brute_force.hpp"
#include "attacks/ml_attack.hpp"
#include "attacks/side_channel.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/composite.hpp"
#include "puf/photonic_puf.hpp"

using namespace neuropuls;

int main() {
  std::printf("== Attack lab ==\n\n");

  // -- 1. ML modelling ------------------------------------------------------
  std::printf("[1] logistic-regression modelling, 3000 CRPs:\n");
  puf::ArbiterPuf arbiter(puf::ArbiterPufConfig{}, 5);
  puf::PhotonicPuf photonic(puf::small_photonic_config(), 5, 0);
  attacks::AttackConfig ml_config;
  ml_config.training_crps = 3000;
  ml_config.test_crps = 400;
  const double acc_arbiter =
      attacks::model_attack(arbiter,
                            attacks::parity_feature_map(arbiter.stages()),
                            ml_config)
          .test_accuracy;
  const double acc_photonic = attacks::mean_attack_accuracy(
      photonic, attacks::raw_feature_map(), ml_config, 4);
  std::printf("    arbiter PUF : %.1f%%  -> %s\n", acc_arbiter * 100.0,
              acc_arbiter > 0.9 ? "BROKEN" : "resists");
  std::printf("    photonic PUF: %.1f%%  -> %s\n\n", acc_photonic * 100.0,
              acc_photonic > 0.9 ? "BROKEN" : "resists");

  // -- 2. power analysis ------------------------------------------------------
  std::printf("[2] power analysis, 1000 traces:\n");
  const auto electronic = attacks::power_analysis_attack(
      arbiter, puf::Challenge(8, 0x3C), 1000, attacks::electronic_leakage(), 1);
  const auto photonic_sc = attacks::power_analysis_attack(
      photonic, puf::Challenge(2, 0x3C), 1000, attacks::photonic_leakage(), 1);
  std::printf("    electronic leakage: %.1f%% bits recovered -> %s\n",
              electronic.bit_recovery_accuracy * 100.0,
              electronic.bit_recovery_accuracy > 0.9 ? "BROKEN" : "resists");
  std::printf("    photonic leakage  : %.1f%% bits recovered -> %s\n\n",
              photonic_sc.bit_recovery_accuracy * 100.0,
              photonic_sc.bit_recovery_accuracy > 0.9 ? "BROKEN" : "resists");

  // -- 3. protocol attacks ------------------------------------------------------
  std::printf("[3] protocol manipulation on HSC-IoT:\n");
  crypto::ChaChaDrbg rng(crypto::bytes_of("lab"));
  const auto provisioned = core::provision(photonic, rng);
  const crypto::Bytes firmware = crypto::bytes_of("fw");
  core::AuthDevice device(photonic, provisioned.device_crp, firmware);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(firmware),
                              photonic.challenge_bytes());
  net::DuplexChannel channel;

  // Record a legitimate session, then replay it.
  net::Message recorded{};
  channel.set_adversary([&](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kBtoA) recorded = m;
    return net::Verdict::pass();
  });
  core::run_auth_session(verifier, device, channel, 1, 100);
  verifier.start(2, 200);
  const bool replay_rejected =
      verifier.process_response(recorded).status != core::AuthStatus::kOk;
  std::printf("    replay of recorded response: %s\n",
              replay_rejected ? "rejected" : "ACCEPTED (bug!)");

  // Tamper with the device's response in flight.
  channel.set_adversary([](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kBtoA &&
        m.type == net::MessageType::kAuthResponse) {
      net::Message forged = m;
      forged.payload[0] ^= 0x01;
      return net::Verdict::replace(forged);
    }
    return net::Verdict::pass();
  });
  const bool tamper_rejected =
      !core::run_auth_session(verifier, device, channel, 3, 300);
  std::printf("    in-flight tampering        : %s\n",
              tamper_rejected ? "rejected" : "ACCEPTED (bug!)");

  // Desync (drop the confirm), then recover.
  channel.set_adversary([](net::Direction d, const net::Message& m) {
    return (d == net::Direction::kAtoB &&
            m.type == net::MessageType::kAuthConfirm)
               ? net::Verdict::drop()
               : net::Verdict::pass();
  });
  core::run_auth_session(verifier, device, channel, 4, 400);
  channel.set_adversary(nullptr);
  const bool recovered =
      core::run_auth_session(verifier, device, channel, 5, 500);
  std::printf("    desync then recovery       : %s\n\n",
              recovered ? "recovered" : "LOCKED OUT (bug!)");

  // -- 4. guessing economics -----------------------------------------------------
  std::printf("[4] CRP guessing economics (%zu-byte response):\n",
              photonic.response_bytes());
  const double entropy_bits = 0.6 * 8.0 * static_cast<double>(photonic.response_bytes());
  std::printf("    effective min-entropy ~%.0f bits -> expected guesses %.1e\n",
              entropy_bits, attacks::expected_guesses(entropy_bits));
  std::printf("    EKE removes the offline channel: attacker rate falls by %.0e\n",
              attacks::eke_rate_reduction(1e9, 1.0));

  const bool all_good = acc_photonic < 0.9 && replay_rejected &&
                        tamper_rejected && recovered;
  std::printf("\nscorecard: %s\n", all_good ? "all defenses hold" : "GAPS FOUND");
  return all_good ? 0 : 1;
}
