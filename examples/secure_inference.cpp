// Secure inference end to end — the Fig. 1 scenario.
//
//   $ ./secure_inference
//
// A model owner wants to run their proprietary network on a remote
// NEUROPULS accelerator without ever exposing the weights or the data:
//   1. the device boots and re-derives its keys from the weak PUF;
//   2. the verifier mutually authenticates the device (Fig. 4);
//   3. the verifier attests the device's firmware (§III-B);
//   4. the network and inputs cross the boundary encrypted (Table I);
//   5. a tampered ciphertext and a compromised device are shown failing.
#include <cstdio>

#include "accel/secure_api.hpp"
#include "core/attestation.hpp"
#include "core/key_manager.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/photonic_puf.hpp"

using namespace neuropuls;

int main() {
  std::printf("== Secure inference lifecycle ==\n\n");
  const auto puf_config = puf::small_photonic_config();
  puf::PhotonicPuf device_puf(puf_config, 99, 0);
  puf::PhotonicPuf verifier_model(puf_config, 99, 0);  // §III-B PUF model

  // -- 1. boot: device keys from the PUF ------------------------------------
  core::KeyManager key_manager(device_puf);
  crypto::ChaChaDrbg rng(crypto::bytes_of("lifecycle"));
  const auto record = key_manager.enroll(rng);
  const auto keys = key_manager.derive(record);
  if (!keys) {
    std::printf("[boot] key derivation failed\n");
    return 1;
  }
  std::printf("[boot] device keys derived from PUF\n");

  // -- 2. mutual authentication ----------------------------------------------
  const auto provisioned = core::provision(device_puf, rng);
  crypto::Bytes firmware = rng.generate(16 * 1024);
  core::AuthDevice auth_device(device_puf, provisioned.device_crp, firmware);
  core::AuthVerifier auth_verifier(provisioned.verifier_secret,
                                   crypto::Sha256::hash(firmware),
                                   device_puf.challenge_bytes());
  net::DuplexChannel channel;
  if (!core::run_auth_session(auth_verifier, auth_device, channel, 1, 7)) {
    std::printf("[auth] FAILED\n");
    return 1;
  }
  std::printf("[auth] device and verifier mutually authenticated\n");

  // -- 3. attestation ----------------------------------------------------------
  core::AttestationConfig att_config;
  att_config.chunk_size = 1024;
  core::AttestDevice att_device(device_puf, firmware, att_config);
  core::AttestVerifier att_verifier(verifier_model, firmware, att_config,
                                    core::AttestationCostModel{});
  const auto att_request = att_verifier.start(2, /*timestamp=*/1111, rng);
  const auto att_report = att_device.handle_request(att_request);
  const auto att_outcome = att_verifier.check(
      *att_report, att_verifier.honest_time_ns());
  std::printf("[attest] digest %s, timing %s -> %s\n",
              att_outcome.digest_ok ? "ok" : "BAD",
              att_outcome.time_ok ? "ok" : "OVER",
              att_outcome.accepted ? "ACCEPTED" : "REJECTED");
  if (!att_outcome.accepted) return 1;

  // -- 4. encrypted load + inference (Table I) --------------------------------
  accel::SecureAccelerator accelerator(
      std::make_unique<accel::PhotonicMvm>(accel::PhotonicMvmConfig{}, 55),
      keys->encryption_key.clone());
  const auto network = accel::make_random_network({8, 16, 4}, 21);
  accelerator.load_network(accel::SecureAccelerator::encrypt_network(
      network, keys->encryption_key.reveal(), 1));
  std::printf("[load_network] %zu parameters loaded (ciphertext only)\n",
              network.parameter_count());

  const std::vector<double> input = {0.3, -0.1, 0.7, 0.2, -0.5, 0.9, 0.0, 0.4};
  const auto ciphered_output = accelerator.execute_network(
      accel::SecureAccelerator::encrypt_input(input,
                                              keys->encryption_key.reveal(),
                                              2));
  const auto output = accel::SecureAccelerator::decrypt_output(
      ciphered_output, keys->encryption_key.reveal());
  std::printf("[execute_network] output:");
  for (double v : output) std::printf(" %.4f", v);
  std::printf("\n");

  // -- 5. failure demonstrations ----------------------------------------------
  auto tampered = accel::SecureAccelerator::encrypt_input(
      input, keys->encryption_key.reveal(), 3);
  tampered[tampered.size() / 2] ^= 0x01;
  try {
    accelerator.execute_network(tampered);
    std::printf("[tamper] NOT DETECTED (bug!)\n");
    return 1;
  } catch (const std::runtime_error&) {
    std::printf("[tamper] tampered input rejected before decryption output\n");
  }

  att_device.corrupt_memory(1234, 0xEE);
  const auto bad_request = att_verifier.start(3, 2222, rng);
  const auto bad_report = att_device.handle_request(bad_request);
  const auto bad_outcome =
      att_verifier.check(*bad_report, att_verifier.honest_time_ns());
  std::printf("[compromise] corrupted firmware attestation: %s\n",
              bad_outcome.accepted ? "ACCEPTED (bug!)" : "rejected");
  return bad_outcome.accepted ? 1 : 0;
}
