// Quickstart: manufacture a photonic PUF device, derive a stable key from
// it, and run one mutual-authentication session against a verifier.
//
//   $ ./quickstart
//
// This touches the three layers a new user needs: the PUF device model
// (src/puf), key generation (src/ecc via core::KeyManager), and one
// security service (src/core mutual authentication, Fig. 4).
#include <cstdio>

#include "core/key_manager.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/photonic_puf.hpp"

using namespace neuropuls;

int main() {
  std::printf("== NEUROPULS quickstart ==\n\n");

  // 1. "Manufacture" a device: wafer seed + die index fix its fingerprint.
  puf::PhotonicPufConfig config;  // 8-port scrambler, 64-bit challenges
  puf::PhotonicPuf device_puf(config, /*wafer_seed=*/2024, /*device_index=*/7);
  std::printf("device: %s, challenge %zu B, response %zu B\n",
              device_puf.name().c_str(), device_puf.challenge_bytes(),
              device_puf.response_bytes());
  std::printf("interrogation time: %.1f ns (response throughput %.1f Gb/s)\n\n",
              device_puf.interrogation_time_s() * 1e9,
              device_puf.response_throughput_bps() / 1e9);

  // 2. Enroll a device key with the fuzzy extractor; re-derive it from a
  //    fresh (noisy) PUF reading, as the device would at every boot.
  core::KeyManager keys(device_puf);
  crypto::ChaChaDrbg enrollment_rng(crypto::bytes_of("factory entropy"));
  const auto record = keys.enroll(enrollment_rng);
  const auto derived = keys.derive(record);
  if (!derived) {
    std::printf("key derivation failed (noise beyond code radius)\n");
    return 1;
  }
  std::printf("device encryption key: %s\n",
              crypto::to_hex(derived->encryption_key.reveal()).c_str());
  std::printf("stable across boots:   %s\n\n",
              common::ct_equal(keys.derive(record)->encryption_key,
                               derived->encryption_key)
                  ? "yes"
                  : "NO");

  // 3. One mutual-authentication session (Fig. 4).
  crypto::ChaChaDrbg provisioning_rng(crypto::bytes_of("provisioning"));
  const auto provisioned = core::provision(device_puf, provisioning_rng);
  const crypto::Bytes firmware = crypto::bytes_of("firmware v1.0");
  core::AuthDevice device(device_puf, provisioned.device_crp, firmware);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(firmware),
                              device_puf.challenge_bytes());
  net::DuplexChannel channel;
  const bool ok = core::run_auth_session(verifier, device, channel, 1, 0x42);
  std::printf("mutual authentication: %s (%zu messages on the wire)\n",
              ok ? "SUCCESS" : "FAILED", channel.transcript().size());
  std::printf("CRP rotated for next session: %s\n",
              common::ct_equal(device.current_response(),
                               verifier.current_secret())
                  ? "yes (device and verifier in lockstep)"
                  : "NO");
  return ok ? 0 : 1;
}
