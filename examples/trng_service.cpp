// Photonic TRNG service demo: harvest entropy from the photodiode noise
// of the PUF front end and show it passing the statistical tests at each
// processing stage.
//
//   $ ./trng_service
//
// The TRNG reuses the PUF hardware (Fig. 2's chain) — the deterministic
// interference cancels in the differential readout, leaving pure
// shot/thermal noise. This is the randomness source behind enrollment
// codewords, protocol nonces, and EKE exponents.
#include <cstdio>

#include "metrics/nist.hpp"
#include "puf/trng.hpp"

using namespace neuropuls;

int main() {
  std::printf("== Photonic TRNG service ==\n\n");
  puf::PhotonicPuf device(puf::small_photonic_config(), 314, 0);
  puf::PhotonicTrng trng(device, puf::Challenge(device.challenge_bytes(), 0x5A));

  std::printf("entropy source: %s front end\n", device.name().c_str());
  std::printf("raw bits per interrogation pair: %zu\n",
              trng.bits_per_interrogation());
  std::printf("raw throughput (device-limited): %.2f Gb/s\n\n",
              trng.raw_throughput_bps() / 1e9);

  std::printf("raw-bit bias over 8192 bits: %.4f (ideal 0.5000)\n\n",
              trng.measured_bias(8192));

  struct Stage {
    const char* name;
    crypto::Bytes data;
  };
  const Stage stages[] = {
      {"raw", trng.raw_bits(8192)},
      {"von Neumann debiased", trng.debiased_bits(8192)},
      {"SHA-256 conditioned", trng.conditioned_bytes(1024)},
  };

  for (const auto& stage : stages) {
    const auto bits = metrics::bits_from_bytes(stage.data);
    std::printf("[%s] %zu bits\n", stage.name, bits.size());
    for (const auto& result : metrics::nist_suite(bits)) {
      std::printf("    %-22s p=%.4f %s\n", result.test.c_str(),
                  result.p_value, result.passed ? "ok" : "FAIL");
    }
    std::printf("    pass fraction: %.2f\n\n",
                metrics::nist_pass_fraction(bits));
  }

  std::printf("sample (32 conditioned bytes): %s\n\n",
              crypto::to_hex(trng.conditioned_bytes(32)).c_str());
  std::printf(
      "note: raw physical noise is unbiased but carries short-range\n"
      "correlation (shared laser noise within a window) — exactly why SP\n"
      "800-90B mandates a conditioning stage before the key path. Only\n"
      "the conditioned output is used by the key manager and protocols.\n");
  return 0;
}
